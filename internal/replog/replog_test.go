package replog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustAppend(t *testing.T, l *Log, payload string) Record {
	t.Helper()
	rec, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%s): %v", payload, err)
	}
	return rec
}

func payloads(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r.Payload)
	}
	return out
}

func TestAppendAssignsMonotoneIndices(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		rec := mustAppend(t, l, fmt.Sprintf(`{"n":%d}`, i))
		if rec.Index != uint64(i) {
			t.Fatalf("record %d got index %d", i, rec.Index)
		}
	}
	if l.LastIndex() != 5 {
		t.Fatalf("LastIndex = %d, want 5", l.LastIndex())
	}
	recs, err := l.Entries(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"n":3}`, `{"n":4}`, `{"n":5}`}
	if fmt.Sprint(payloads(recs)) != fmt.Sprint(want) {
		t.Fatalf("Entries(2) = %v, want %v", payloads(recs), want)
	}
}

func TestAppendRejectsInvalidJSON(t *testing.T) {
	l, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("not json")); err == nil {
		t.Fatal("Append(non-JSON) succeeded")
	}
}

func TestReopenRecoversEntriesAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		mustAppend(t, l, fmt.Sprintf(`{"n":%d}`, i))
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentMaxRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastIndex() != 10 {
		t.Fatalf("reopened LastIndex = %d, want 10", l2.LastIndex())
	}
	recs, err := l2.Entries(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if want := fmt.Sprintf(`{"n":%d}`, i+1); string(r.Payload) != want {
			t.Fatalf("entry %d = %s, want %s", i, r.Payload, want)
		}
	}
}

func TestTornFinalLineIsDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, `{"n":1}`)
	mustAppend(t, l, `{"n":2}`)
	l.Close()

	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"i":3,"c":12,"p":{"trunc`) // torn mid-append
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if l2.LastIndex() != 2 {
		t.Fatalf("LastIndex = %d after torn tail, want 2", l2.LastIndex())
	}
	// The log must keep appending past the dropped record.
	if rec := mustAppend(t, l2, `{"n":3}`); rec.Index != 3 {
		t.Fatalf("append after torn tail got index %d, want 3", rec.Index)
	}
}

func TestCRCMismatchIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, `{"n":1}`)
	mustAppend(t, l, `{"n":2}`)
	l.Close()

	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the first record; its CRC no longer
	// matches, and since it is not the final line it must be an error.
	corrupted := bytes.Replace(b, []byte(`"n":1`), []byte(`"n":7`), 1)
	if bytes.Equal(corrupted, b) {
		t.Fatal("corruption did not apply")
	}
	os.WriteFile(seg, corrupted, 0o644)
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("Open on corrupted segment: err = %v, want CRC mismatch", err)
	}
}

func TestAppendRecordIdempotentAndGapChecked(t *testing.T) {
	l, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRecord(Record{Index: 1, Payload: []byte(`{"a":1}`)}); err != nil {
		t.Fatal(err)
	}
	// Replay of an already-held index is a no-op.
	if err := l.AppendRecord(Record{Index: 1, Payload: []byte(`{"a":1}`)}); err != nil {
		t.Fatalf("idempotent re-append: %v", err)
	}
	if l.LastIndex() != 1 {
		t.Fatalf("LastIndex = %d, want 1", l.LastIndex())
	}
	if err := l.AppendRecord(Record{Index: 3, Payload: []byte(`{"a":3}`)}); err == nil {
		t.Fatal("gap append succeeded")
	}
}

func TestCommitWatermarkAndWaiters(t *testing.T) {
	l, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, `{"n":1}`)
	mustAppend(t, l, `{"n":2}`)
	done := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- l.WaitCommitted(2, done) }()
	l.Commit(1)
	l.Commit(2)
	if ok := <-got; !ok {
		t.Fatal("WaitCommitted(2) = false after Commit(2)")
	}
	// Commit is monotone: a lower value does not regress.
	l.Commit(1)
	if l.CommitIndex() != 2 {
		t.Fatalf("CommitIndex regressed to %d", l.CommitIndex())
	}
	// A closed done channel abandons the wait.
	closed := make(chan struct{})
	close(closed)
	if l.WaitCommitted(99, closed) {
		t.Fatal("WaitCommitted(99) with closed done = true")
	}
}

func TestCompactionTruncatesAndReplays(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	var state []string
	for i := 1; i <= 7; i++ {
		mustAppend(t, l, fmt.Sprintf(`{"n":%d}`, i))
		state = append(state, fmt.Sprintf(`{"n":%d}`, i))
	}
	// Snapshot = the state machine's own serialization: one line per
	// applied payload.
	snap := func(w io.Writer) error {
		for _, s := range state[:5] {
			fmt.Fprintln(w, s)
		}
		return nil
	}
	if err := l.Compact(5, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Entries(3, 0); err == nil {
		t.Fatal("Entries below snapshot index succeeded")
	}
	recs, err := l.Entries(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Index != 6 {
		t.Fatalf("post-compaction entries = %+v", recs)
	}
	l.Close()

	// Reopen: replay must produce snapshot lines then entries 6..7.
	l2, err := Open(dir, Options{SegmentMaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var replayed []string
	err = l2.Replay(
		func(r io.Reader) error {
			b, _ := io.ReadAll(r)
			for _, line := range strings.Fields(strings.ReplaceAll(string(b), "\n", " ")) {
				replayed = append(replayed, line)
			}
			return nil
		},
		func(rec Record) error {
			replayed = append(replayed, string(rec.Payload))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(replayed) != fmt.Sprint(state) {
		t.Fatalf("replay = %v, want %v", replayed, state)
	}
}

// TestKillDuringCompaction simulates every crash point of a compaction
// by reconstructing the on-disk states it passes through and verifying
// each one reopens to the same logical log.
func TestKillDuringCompaction(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentMaxRecords: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 6; i++ {
			mustAppend(t, l, fmt.Sprintf(`{"n":%d}`, i))
		}
		l.Close()
		return dir
	}
	verify := func(t *testing.T, dir string) {
		t.Helper()
		l, err := Open(dir, Options{SegmentMaxRecords: 2})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l.Close()
		var replayed []string
		err = l.Replay(
			func(r io.Reader) error {
				b, _ := io.ReadAll(r)
				replayed = append(replayed, strings.Fields(string(b))...)
				return nil
			},
			func(rec Record) error {
				replayed = append(replayed, string(rec.Payload))
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, 6)
		for i := range want {
			want[i] = fmt.Sprintf(`{"n":%d}`, i+1)
		}
		if fmt.Sprint(replayed) != fmt.Sprint(want) {
			t.Fatalf("replay = %v, want %v", replayed, want)
		}
	}

	t.Run("crash_before_rename", func(t *testing.T) {
		// The snapshot temp file was written but never renamed: the old
		// log must load untouched and the temp file must be cleaned up.
		dir := build(t)
		tmp := filepath.Join(dir, snapName(4)+".tmp-123")
		os.WriteFile(tmp, []byte("{\"n\":1}\n{\"n\":2}\n{\"n\":3}\n{\"n\":4}\n"), 0o644)
		verify(t, dir)
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatal("crashed compaction temp file survived reopen")
		}
	})

	t.Run("crash_after_rename_before_cleanup", func(t *testing.T) {
		// The new snapshot landed but old segments were not deleted:
		// replay must not double-apply the compacted entries, and the
		// stale segments must be removed.
		dir := build(t)
		var snap bytes.Buffer
		for i := 1; i <= 4; i++ {
			fmt.Fprintf(&snap, "{\"n\":%d}\n", i)
		}
		os.WriteFile(filepath.Join(dir, snapName(4)), snap.Bytes(), 0o644)
		verify(t, dir)
		if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
			t.Fatal("fully compacted segment survived reopen")
		}
	})

	t.Run("crash_between_snapshots", func(t *testing.T) {
		// Two snapshots on disk (the previous one was not deleted): the
		// newest must win, the older must be removed.
		dir := build(t)
		os.WriteFile(filepath.Join(dir, snapName(2)), []byte("{\"n\":1}\n{\"n\":2}\n"), 0o644)
		var snap bytes.Buffer
		for i := 1; i <= 4; i++ {
			fmt.Fprintf(&snap, "{\"n\":%d}\n", i)
		}
		os.WriteFile(filepath.Join(dir, snapName(4)), snap.Bytes(), 0o644)
		verify(t, dir)
		if _, err := os.Stat(filepath.Join(dir, snapName(2))); !os.IsNotExist(err) {
			t.Fatal("stale older snapshot survived reopen")
		}
	})
}

func TestLegacyFileBootstrap(t *testing.T) {
	// A legacy single-file JSONL WAL (no framing) becomes the seed
	// snapshot of a fresh log and new entries continue from index 1.
	legacy := "{\"op\":\"task\",\"task\":{\"id\":\"t1\"}}\n{\"op\":\"counters\",\"counters\":{\"submitted\":1}}\n"
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.HasState() {
		t.Fatal("fresh log reports state")
	}
	if err := l.Bootstrap(strings.NewReader(legacy)); err != nil {
		t.Fatal(err)
	}
	if !l.HasState() {
		t.Fatal("bootstrapped log reports no state")
	}
	mustAppend(t, l, `{"op":"task","task":{"id":"t2"}}`)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var restored string
	var applied []string
	err = l2.Replay(
		func(r io.Reader) error {
			b, _ := io.ReadAll(r)
			restored = string(b)
			return nil
		},
		func(rec Record) error {
			applied = append(applied, string(rec.Payload))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if restored != legacy {
		t.Fatalf("restored snapshot = %q, want the legacy bytes", restored)
	}
	if len(applied) != 1 || applied[0] != `{"op":"task","task":{"id":"t2"}}` {
		t.Fatalf("applied = %v", applied)
	}
	if err := l2.Bootstrap(strings.NewReader(legacy)); err == nil {
		t.Fatal("Bootstrap on non-empty log succeeded")
	}
}

func TestParseRecordsLegacyLines(t *testing.T) {
	stream := "{\"a\":1}\n{\"a\":2}\n"
	recs, err := ParseRecords(strings.NewReader(stream), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Index != 7 || recs[1].Index != 8 {
		t.Fatalf("legacy parse = %+v", recs)
	}
}

func TestRestoreSnapshotCatchUp(t *testing.T) {
	l, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreSnapshot(40, strings.NewReader("{}\n")); err != nil {
		t.Fatal(err)
	}
	if l.LastIndex() != 40 || l.SnapIndex() != 40 {
		t.Fatalf("after restore: last=%d snap=%d, want 40/40", l.LastIndex(), l.SnapIndex())
	}
	if err := l.AppendRecord(Record{Index: 41, Payload: []byte(`{"n":41}`)}); err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreSnapshot(40, strings.NewReader("{}\n")); err == nil {
		t.Fatal("RestoreSnapshot behind log end succeeded")
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	l, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	got := make(chan bool, 1)
	go func() { got <- l.WaitCommitted(5, done) }()
	l.Close()
	if ok := <-got; ok {
		t.Fatal("WaitCommitted = true after Close")
	}
	if _, err := l.Append([]byte(`{}`)); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
}

func TestStats(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, `{"n":1}`)
	mustAppend(t, l, `{"n":2}`)
	l.Commit(1)
	if err := l.Compact(1, func(w io.Writer) error { fmt.Fprintln(w, `{"n":1}`); return nil }); err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.LastIndex != 2 || s.CommitIndex != 1 || s.SnapIndex != 1 || s.Entries != 1 ||
		s.Appends != 2 || s.Compactions != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestSnapshotStream(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var buf bytes.Buffer
	if _, ok, _ := l.Snapshot(&buf); ok {
		t.Fatal("fresh log has a snapshot")
	}
	mustAppend(t, l, `{"n":1}`)
	if err := l.Compact(1, func(w io.Writer) error { fmt.Fprintln(w, `{"n":1}`); return nil }); err != nil {
		t.Fatal(err)
	}
	idx, ok, err := l.Snapshot(&buf)
	if err != nil || !ok || idx != 1 {
		t.Fatalf("Snapshot = (%d, %v, %v)", idx, ok, err)
	}
	if buf.String() != "{\"n\":1}\n" {
		t.Fatalf("snapshot bytes = %q", buf.String())
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	rec := Record{Index: 12, Payload: []byte(`{"x":[1,2,3]}`)}
	line, err := encodeLine(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeLine(bytes.TrimSpace(line), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != rec.Index || string(got.Payload) != string(rec.Payload) {
		t.Fatalf("round trip = %+v", got)
	}
	var env envelope
	if err := json.Unmarshal(bytes.TrimSpace(line), &env); err != nil {
		t.Fatal(err)
	}
	if env.CRC == 0 {
		t.Fatal("encoded line carries no CRC")
	}
}
