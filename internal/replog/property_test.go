package replog

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// hashMachine is a toy state machine for replay-determinism tests: the
// state is the ordered list of applied payload lines, and the state
// hash is the SHA-256 of the serialized stream (so "identical state"
// means byte-identical snapshots).
type hashMachine struct {
	lines []string
}

func (m *hashMachine) apply(rec Record) error {
	m.lines = append(m.lines, string(rec.Payload))
	return nil
}

func (m *hashMachine) restore(r io.Reader) error {
	m.lines = nil
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			m.lines = append(m.lines, s)
		}
	}
	return sc.Err()
}

func (m *hashMachine) snapshot(w io.Writer) error {
	for _, l := range m.lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

func (m *hashMachine) hash() [32]byte {
	var sb strings.Builder
	m.snapshot(&sb)
	return sha256.Sum256([]byte(sb.String()))
}

// TestReplayDeterminismProperty drives a log through randomized batch
// splits, restarts (close + reopen) and snapshot/compaction points, and
// checks that replaying the surviving files always reconstructs exactly
// the state produced by applying every payload in order.
func TestReplayDeterminismProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			dir := t.TempDir()
			segMax := 1 + rng.Intn(5)
			l, err := Open(dir, Options{SegmentMaxRecords: segMax})
			if err != nil {
				t.Fatal(err)
			}

			oracle := &hashMachine{} // every payload applied in order
			live := &hashMachine{}   // the machine attached to the log
			total := 40 + rng.Intn(80)
			written := 0
			for written < total {
				batch := 1 + rng.Intn(7)
				for b := 0; b < batch && written < total; b++ {
					payload := fmt.Sprintf(`{"op":%d,"v":%d}`, written, rng.Intn(1000))
					rec, err := l.Append([]byte(payload))
					if err != nil {
						t.Fatal(err)
					}
					oracle.apply(rec)
					live.apply(rec)
					written++
				}
				switch rng.Intn(4) {
				case 0: // compact at the current head
					if err := l.Compact(l.LastIndex(), live.snapshot); err != nil {
						t.Fatal(err)
					}
				case 1: // restart: close, reopen, replay from disk
					l.Close()
					l, err = Open(dir, Options{SegmentMaxRecords: segMax})
					if err != nil {
						t.Fatal(err)
					}
					live = &hashMachine{}
					if err := l.Replay(live.restore, live.apply); err != nil {
						t.Fatal(err)
					}
					if live.hash() != oracle.hash() {
						t.Fatalf("state diverged after restart at %d ops", written)
					}
				}
			}
			l.Close()

			// Final check: a cold replay reconstructs the oracle exactly.
			l2, err := Open(dir, Options{SegmentMaxRecords: segMax})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			replayed := &hashMachine{}
			if err := l2.Replay(replayed.restore, replayed.apply); err != nil {
				t.Fatal(err)
			}
			if replayed.hash() != oracle.hash() {
				t.Fatalf("cold replay hash != oracle hash after %d ops", total)
			}
			if l2.LastIndex() != uint64(total) {
				t.Fatalf("LastIndex = %d, want %d", l2.LastIndex(), total)
			}
		})
	}
}

// TestFollowerReplicationProperty streams a leader log into a follower
// log in randomized batch sizes with duplicated deliveries and follower
// restarts, optionally through a snapshot catch-up, and checks the
// follower's state hash equals the leader's.
func TestFollowerReplicationProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2000 + trial)))
			leader, err := Open(t.TempDir(), Options{SegmentMaxRecords: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatal(err)
			}
			defer leader.Close()
			leaderSM := &hashMachine{}
			total := 30 + rng.Intn(60)
			for i := 0; i < total; i++ {
				payload := fmt.Sprintf(`{"op":%d}`, i)
				rec, err := leader.Append([]byte(payload))
				if err != nil {
					t.Fatal(err)
				}
				leaderSM.apply(rec)
				// Occasionally compact the leader mid-stream so late
				// followers must catch up via snapshot.
				if rng.Intn(10) == 0 {
					if err := leader.Compact(leader.LastIndex(), leaderSM.snapshot); err != nil {
						t.Fatal(err)
					}
				}
			}

			followerDir := t.TempDir()
			follower, err := Open(followerDir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			followerSM := &hashMachine{}
			for follower.LastIndex() < leader.LastIndex() {
				recs, err := leader.Entries(follower.LastIndex(), 1+rng.Intn(9))
				if err == ErrCompacted || (err != nil && strings.Contains(err.Error(), "compacted")) {
					var snap strings.Builder
					idx, ok, serr := leader.Snapshot(&snap)
					if serr != nil || !ok {
						t.Fatalf("snapshot catch-up: ok=%v err=%v", ok, serr)
					}
					if err := follower.RestoreSnapshot(idx, strings.NewReader(snap.String())); err != nil {
						t.Fatal(err)
					}
					if err := followerSM.restore(strings.NewReader(snap.String())); err != nil {
						t.Fatal(err)
					}
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				// Deliver the batch, sometimes twice (duplicated
				// delivery after a lost ack must be harmless).
				for pass := 0; pass < 1+rng.Intn(2); pass++ {
					for _, rec := range recs {
						if rec.Index <= follower.LastIndex() && pass > 0 {
							if err := follower.AppendRecord(rec); err != nil {
								t.Fatal(err)
							}
							continue
						}
						before := follower.LastIndex()
						if err := follower.AppendRecord(rec); err != nil {
							t.Fatal(err)
						}
						if follower.LastIndex() > before {
							followerSM.apply(rec)
						}
					}
				}
				// Occasional follower restart from its own disk.
				if rng.Intn(6) == 0 {
					follower.Close()
					follower, err = Open(followerDir, Options{})
					if err != nil {
						t.Fatal(err)
					}
					followerSM = &hashMachine{}
					if err := follower.Replay(followerSM.restore, followerSM.apply); err != nil {
						t.Fatal(err)
					}
				}
			}
			defer follower.Close()
			if followerSM.hash() != leaderSM.hash() {
				t.Fatalf("follower state hash != leader state hash (%d entries)", total)
			}
		})
	}
}
