package replog

// Tests for the leadership-term metadata and the truncation-resync
// Reset path the cluster's epoch-fenced failover builds on.

import (
	"fmt"
	"strings"
	"testing"
)

func TestTermPersistsAndIsMonotone(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Term(); got != 0 {
		t.Fatalf("fresh Term = %d, want 0", got)
	}
	if err := l.SetTerm(3); err != nil {
		t.Fatal(err)
	}
	// Lower and equal terms are idempotent no-ops, never regressions.
	if err := l.SetTerm(2); err != nil {
		t.Fatal(err)
	}
	if err := l.SetTerm(3); err != nil {
		t.Fatal(err)
	}
	if got := l.Term(); got != 3 {
		t.Fatalf("Term = %d, want 3", got)
	}
	mustAppend(t, l, `{"n":1}`)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Term(); got != 3 {
		t.Fatalf("reopened Term = %d, want 3", got)
	}
	if l2.LastIndex() != 1 {
		t.Fatalf("term marker disturbed the log: LastIndex = %d, want 1", l2.LastIndex())
	}
}

func TestTermSurvivesOnMemoryLog(t *testing.T) {
	l, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.SetTerm(7); err != nil {
		t.Fatal(err)
	}
	if got := l.Term(); got != 7 {
		t.Fatalf("Term = %d, want 7", got)
	}
}

func TestResetDiscardsDivergedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentMaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		mustAppend(t, l, fmt.Sprintf(`{"old":%d}`, i))
	}
	l.Commit(4)

	// Truncation resync: replace everything with the new leader's
	// snapshot at index 5 — the entries at 5 and 6 (the diverged tail)
	// must vanish even though 5 < LastIndex.
	snap := `{"state":"leader"}` + "\n"
	if err := l.Reset(5, strings.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	if got := l.LastIndex(); got != 5 {
		t.Fatalf("LastIndex after Reset = %d, want 5", got)
	}
	if got := l.CommitIndex(); got != 5 {
		t.Fatalf("CommitIndex after Reset = %d, want 5", got)
	}
	if err := l.AppendRecord(Record{Index: 6, Payload: []byte(`{"new":6}`)}); err != nil {
		t.Fatal(err)
	}

	// A restart must replay the snapshot plus the new tail — never the
	// pre-Reset segments.
	l.Close()
	l2, err := Open(dir, Options{SegmentMaxRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastIndex(); got != 6 {
		t.Fatalf("reopened LastIndex = %d, want 6", got)
	}
	var sb strings.Builder
	idx, ok, err := l2.Snapshot(&sb)
	if err != nil || !ok {
		t.Fatalf("Snapshot: ok=%v err=%v", ok, err)
	}
	if idx != 5 || sb.String() != snap {
		t.Fatalf("snapshot = %q at %d, want %q at 5", sb.String(), idx, snap)
	}
	recs, err := l2.Entries(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != `{"new":6}` {
		t.Fatalf("entries after snapshot = %v, want the single new record", payloads(recs))
	}
	for _, r := range recs {
		if strings.Contains(string(r.Payload), "old") {
			t.Fatalf("diverged tail survived Reset: %s", r.Payload)
		}
	}
}

func TestResetNilSnapshotEmptiesLog(t *testing.T) {
	l, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, `{"n":1}`)
	mustAppend(t, l, `{"n":2}`)
	if err := l.Reset(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := l.LastIndex(); got != 0 {
		t.Fatalf("LastIndex after empty Reset = %d, want 0", got)
	}
	rec := mustAppend(t, l, `{"n":1}`)
	if rec.Index != 1 {
		t.Fatalf("first append after empty Reset got index %d, want 1", rec.Index)
	}
}
