// Package replog is the replicated write-ahead log shared by the
// crowd repository's durable state machines (the task pool and the
// history store). It generalizes the task pool's original single-file
// JSONL WAL into a reusable package:
//
//   - an append-only log of CRC-framed JSONL records with monotone,
//     gap-free indices, split across segment files that rotate at a
//     configurable record count;
//   - a commit index — the replication watermark a leader advances as
//     followers acknowledge entries — with blocking waiters, so a
//     server can hold a write response until the entry is replicated;
//   - snapshot+truncate compaction: the state machine's own snapshot
//     stream is written crash-safely (temp file, fsync, atomic rename)
//     at a given index and every segment at or below it is deleted;
//   - deterministic replay into any state machine: restore the newest
//     snapshot, then apply the surviving entries in index order.
//
// The on-disk format is read-compatible with the legacy single-file
// WALs this package replaces: a line that does not parse as a framed
// record envelope is treated as a bare payload with the next implicit
// index, so pre-existing JSONL files load as seed snapshots or legacy
// segments unchanged. A torn final line (a crash mid-append) is
// dropped, matching the old WAL semantics.
package replog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Sentinel errors.
var (
	// ErrCompacted reports a request for entries at or below the
	// snapshot index: they were folded into the snapshot and are no
	// longer individually addressable. The caller should ship the
	// snapshot instead.
	ErrCompacted = errors.New("replog: entries compacted into snapshot")
	// ErrGap reports an AppendRecord whose index would leave a hole in
	// the log (index > LastIndex()+1).
	ErrGap = errors.New("replog: append would leave an index gap")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("replog: log is closed")
)

// Record is one log entry: a monotone index and an opaque payload (by
// convention one JSON object, the state machine's mutation record).
type Record struct {
	Index   uint64
	Payload []byte
}

// envelope is the framed on-disk line: index, CRC-32C of the payload
// bytes, and the payload itself embedded as raw JSON.
type envelope struct {
	Index   uint64          `json:"i"`
	CRC     uint32          `json:"c"`
	Payload json.RawMessage `json:"p"`
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log. The zero value selects the defaults below.
type Options struct {
	// SegmentMaxRecords rotates the active segment file after this many
	// appends (DefaultSegmentMaxRecords when zero).
	SegmentMaxRecords int
	// Name labels the log in errors and metrics ("replog" when empty).
	Name string
}

// DefaultSegmentMaxRecords is the segment rotation threshold.
const DefaultSegmentMaxRecords = 4096

func (o Options) segmentMax() int {
	if o.SegmentMaxRecords > 0 {
		return o.SegmentMaxRecords
	}
	return DefaultSegmentMaxRecords
}

func (o Options) name() string {
	if o.Name != "" {
		return o.Name
	}
	return "replog"
}

// Log is an append-only replicated log. All methods are safe for
// concurrent use. A Log opened with an empty dir is memory-only (used
// by follower replicas in tests and by the in-process cluster harness);
// otherwise dir holds snapshot and segment files.
type Log struct {
	mu     sync.Mutex
	cond   *sync.Cond // broadcast on append and on commit advance
	dir    string
	opts   Options
	closed bool

	snapIndex uint64   // every index <= snapIndex is folded into the snapshot
	recs      []Record // retained entries, recs[0].Index == snapIndex+1 when non-empty
	last      uint64   // highest appended index
	commit    uint64   // replication watermark (volatile, not persisted)
	term      uint64   // leadership term/epoch metadata (persisted as a marker file)

	active      *os.File // current segment (nil in memory mode)
	activeCount int      // records written to the active segment

	// Counters for the replog_* metric families (read via Stats).
	appends     uint64
	compactions uint64
}

// Stats is a point-in-time counter/gauge view of the log, consumed by
// the cluster metrics layer.
type Stats struct {
	LastIndex   uint64
	CommitIndex uint64
	SnapIndex   uint64
	Entries     int // retained (non-compacted) entries
	Appends     uint64
	Compactions uint64
}

// Open loads (or creates) a log. dir == "" opens a memory-only log.
// Leftover temp files from a crashed compaction are removed; when
// several snapshots survive a crash the newest wins and older snapshot
// and segment files below it are cleaned up. Records already covered by
// the snapshot are skipped; a torn final line in the newest segment is
// dropped.
func Open(dir string, opts Options) (*Log, error) {
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%s: open: %w", opts.name(), err)
	}
	if err := l.load(); err != nil {
		return nil, err
	}
	return l, nil
}

func snapName(index uint64) string { return fmt.Sprintf("snapshot-%020d.jsonl", index) }
func segName(first uint64) string  { return fmt.Sprintf("seg-%020d.jsonl", first) }
func termName(term uint64) string  { return fmt.Sprintf("term-%020d", term) }

func parseTerm(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "term-") {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(strings.TrimPrefix(name, "term-"), "%d", &v); err != nil {
		return 0, false
	}
	return v, true
}

func parseIndexed(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".jsonl") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".jsonl")
	var v uint64
	if _, err := fmt.Sscanf(mid, "%d", &v); err != nil {
		return 0, false
	}
	return v, true
}

// load scans dir and rebuilds the in-memory state.
func (l *Log) load() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var snaps []uint64
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.Contains(name, ".tmp-") {
			// A crashed compaction's temp file: never renamed, so never
			// part of the log. Remove it.
			os.Remove(filepath.Join(l.dir, name))
			continue
		}
		if v, ok := parseIndexed(name, "snapshot-"); ok {
			snaps = append(snaps, v)
		} else if v, ok := parseIndexed(name, "seg-"); ok {
			segs = append(segs, v)
		} else if v, ok := parseTerm(name); ok {
			// The highest surviving term marker wins; older ones are
			// leftovers from a crash between create and cleanup.
			if v > l.term {
				if l.term > 0 {
					os.Remove(filepath.Join(l.dir, termName(l.term)))
				}
				l.term = v
			} else {
				os.Remove(filepath.Join(l.dir, name))
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	if len(snaps) > 0 {
		l.snapIndex = snaps[len(snaps)-1]
		l.last = l.snapIndex
		// Older snapshots are garbage from a crash between rename and
		// cleanup; finishing the cleanup here makes compaction
		// idempotent across crashes.
		for _, v := range snaps[:len(snaps)-1] {
			os.Remove(filepath.Join(l.dir, snapName(v)))
		}
	}
	for i, first := range segs {
		path := filepath.Join(l.dir, segName(first))
		recs, err := readSegment(path, i == len(segs)-1)
		if err != nil {
			return fmt.Errorf("%s: %s: %w", l.opts.name(), path, err)
		}
		keep := false
		for _, r := range recs {
			if r.Index <= l.snapIndex {
				continue // folded into the snapshot already
			}
			if r.Index != l.last+1 {
				return fmt.Errorf("%s: %s: index gap: have %d, next record %d",
					l.opts.name(), path, l.last, r.Index)
			}
			l.recs = append(l.recs, r)
			l.last = r.Index
			keep = true
		}
		if !keep && first <= l.snapIndex {
			// Fully compacted segment that survived a crash mid-cleanup.
			os.Remove(path)
		}
	}
	return nil
}

// readSegment parses one segment file. Legacy (unframed) lines become
// records with implicit sequential indices continuing from the last
// framed index seen; tolerateTorn drops an unparsable final line.
func readSegment(path string, tolerateTorn bool) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	first, _ := parseIndexed(filepath.Base(path), "seg-")
	return ParseRecords(f, first, tolerateTorn)
}

// ParseRecords reads a framed (or legacy unframed) JSONL record stream.
// nextIndex is the index to assign the first record if the stream turns
// out to be legacy-format; framed records carry their own indices.
func ParseRecords(r io.Reader, nextIndex uint64, tolerateTorn bool) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var lines []string
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []Record
	for i, line := range lines {
		rec, err := decodeLine([]byte(line), nextIndex)
		if err != nil {
			if tolerateTorn && i == len(lines)-1 {
				break // torn final append from a crash; drop it
			}
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, rec)
		nextIndex = rec.Index + 1
	}
	return out, nil
}

// decodeLine parses one line as a framed envelope, falling back to a
// legacy bare payload at the implicit index. A line that looks framed
// (has the "i" and "c" keys) but fails its CRC is corruption, not
// legacy data.
func decodeLine(line []byte, implicit uint64) (Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err == nil && len(env.Payload) > 0 && env.Index > 0 {
		if crc32.Checksum(env.Payload, crcTable) != env.CRC {
			return Record{}, fmt.Errorf("CRC mismatch at index %d", env.Index)
		}
		return Record{Index: env.Index, Payload: append([]byte(nil), env.Payload...)}, nil
	}
	if !json.Valid(line) {
		return Record{}, fmt.Errorf("invalid JSON")
	}
	return Record{Index: implicit, Payload: append([]byte(nil), line...)}, nil
}

func encodeLine(rec Record) ([]byte, error) {
	if !json.Valid(rec.Payload) {
		return nil, fmt.Errorf("replog: payload is not valid JSON")
	}
	b, err := json.Marshal(envelope{
		Index:   rec.Index,
		CRC:     crc32.Checksum(rec.Payload, crcTable),
		Payload: json.RawMessage(rec.Payload),
	})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Append assigns the next index to payload and appends it, returning
// the stored record. The payload must be one valid JSON value.
func (l *Log) Append(payload []byte) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Record{}, ErrClosed
	}
	rec := Record{Index: l.last + 1, Payload: append([]byte(nil), payload...)}
	if err := l.appendLocked(rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// AppendRecord appends a record at its own index (the follower path:
// entries arrive from the leader already numbered). Appending at or
// below LastIndex is an idempotent no-op — the retry path after a lost
// ack; an index beyond LastIndex+1 is ErrGap.
func (l *Log) AppendRecord(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if rec.Index <= l.last {
		return nil
	}
	if rec.Index != l.last+1 {
		return fmt.Errorf("%w: have %d, got %d", ErrGap, l.last, rec.Index)
	}
	rec.Payload = append([]byte(nil), rec.Payload...)
	return l.appendLocked(rec)
}

func (l *Log) appendLocked(rec Record) error {
	if l.active == nil && l.dir != "" {
		if err := l.rotateLocked(rec.Index); err != nil {
			return err
		}
	}
	if l.active != nil {
		line, err := encodeLine(rec)
		if err != nil {
			return err
		}
		if _, err := l.active.Write(line); err != nil {
			return fmt.Errorf("%s: append: %w", l.opts.name(), err)
		}
		l.activeCount++
		if l.activeCount >= l.opts.segmentMax() {
			if err := l.rotateLocked(rec.Index + 1); err != nil {
				return err
			}
		}
	} else if l.dir == "" {
		if _, err := encodeLine(rec); err != nil {
			return err // keep memory and disk modes equally strict
		}
	}
	l.recs = append(l.recs, rec)
	l.last = rec.Index
	l.appends++
	l.cond.Broadcast()
	return nil
}

// rotateLocked closes the active segment and opens a fresh one whose
// first record will be index first.
func (l *Log) rotateLocked(first uint64) error {
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			return err
		}
		l.active.Close()
		l.active = nil
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(first)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("%s: rotate: %w", l.opts.name(), err)
	}
	l.active = f
	l.activeCount = 0
	return nil
}

// LastIndex returns the highest appended index (0 for an empty log).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// SnapIndex returns the highest index folded into the snapshot.
func (l *Log) SnapIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapIndex
}

// CommitIndex returns the replication watermark.
func (l *Log) CommitIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commit
}

// Commit advances the replication watermark (monotone; lower values are
// ignored) and wakes WaitCommitted waiters.
func (l *Log) Commit(index uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index > l.commit {
		l.commit = index
		l.cond.Broadcast()
	}
}

// WaitCommitted blocks until the commit index reaches index, the log is
// closed, or done is closed (the caller's deadline — a closed channel
// returns false immediately). It reports whether the index committed.
func (l *Log) WaitCommitted(index uint64, done <-chan struct{}) bool {
	// A watcher goroutine pokes the condition variable when done fires;
	// stopped on exit so abandoned waits don't leak.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-done:
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		case <-stop:
		}
	}()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.commit < index && !l.closed {
		select {
		case <-done:
			return false
		default:
		}
		l.cond.Wait()
	}
	return l.commit >= index
}

// WaitAppend blocks until LastIndex exceeds after, the log closes, or
// done is closed, returning the new last index (the replicator's
// streaming trigger).
func (l *Log) WaitAppend(after uint64, done <-chan struct{}) (uint64, bool) {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-done:
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		case <-stop:
		}
	}()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.last <= after && !l.closed {
		select {
		case <-done:
			return l.last, false
		default:
		}
		l.cond.Wait()
	}
	return l.last, l.last > after
}

// Entries returns up to max records with Index > after, in index order
// (max <= 0 means no limit). Asking for entries already folded into the
// snapshot returns ErrCompacted — ship the snapshot instead.
func (l *Log) Entries(after uint64, max int) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.snapIndex {
		return nil, fmt.Errorf("%w (snapshot at %d, asked after %d)", ErrCompacted, l.snapIndex, after)
	}
	start := int(after - l.snapIndex) // recs[0].Index == snapIndex+1
	if start >= len(l.recs) {
		return nil, nil
	}
	out := l.recs[start:]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	// The records themselves are immutable once appended; copying the
	// slice header is enough.
	return append([]Record(nil), out...), nil
}

// Snapshot streams the current snapshot (the state at SnapIndex) to w
// and returns its index. A log that never compacted has no snapshot:
// ok is false and nothing is written.
func (l *Log) Snapshot(w io.Writer) (index uint64, ok bool, err error) {
	l.mu.Lock()
	snap := l.snapIndex
	dir := l.dir
	l.mu.Unlock()
	if dir == "" {
		return 0, false, nil
	}
	f, err := os.Open(filepath.Join(dir, snapName(snap)))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	if _, err := io.Copy(w, f); err != nil {
		return 0, false, err
	}
	return snap, true, nil
}

// RestoreSnapshot replaces the log's contents with a snapshot taken at
// index (the follower catch-up path): retained entries at or below
// index are dropped, the snapshot stream is persisted, and the log
// continues from index. Entries above index must not exist (the caller
// installs a snapshot only when it is behind it).
func (l *Log) RestoreSnapshot(index uint64, snapshot io.Reader) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.last > index {
		return fmt.Errorf("%s: restore at %d behind log end %d", l.opts.name(), index, l.last)
	}
	if l.dir != "" {
		if err := l.writeSnapshotLocked(index, func(w io.Writer) error {
			_, err := io.Copy(w, snapshot)
			return err
		}); err != nil {
			return err
		}
	} else if snapshot != nil {
		if _, err := io.Copy(io.Discard, snapshot); err != nil {
			return err
		}
	}
	l.snapIndex = index
	l.last = index
	l.recs = nil
	l.cond.Broadcast()
	return nil
}

// Term returns the leadership term/epoch metadata attached to the log
// (0 when never set).
func (l *Log) Term() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// SetTerm persists the leadership term/epoch as log metadata. Terms are
// monotone: a lower or equal term is an idempotent no-op. On disk the
// term is a marker file (term-<n>) created before the previous marker is
// removed, so a crash between the two leaves the newest term winning at
// the next Open.
func (l *Log) SetTerm(term uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if term <= l.term {
		return nil
	}
	old := l.term
	if l.dir != "" {
		f, err := os.Create(filepath.Join(l.dir, termName(term)))
		if err != nil {
			return fmt.Errorf("%s: set term: %w", l.opts.name(), err)
		}
		f.Sync()
		f.Close()
		if d, err := os.Open(l.dir); err == nil {
			d.Sync()
			d.Close()
		}
		if old > 0 {
			os.Remove(filepath.Join(l.dir, termName(old)))
		}
	}
	l.term = term
	return nil
}

// Reset replaces the log's entire contents with a snapshot at index —
// the truncation-resync path for a diverged replica (a demoted leader
// whose tail carries records the new leader never acknowledged). Unlike
// RestoreSnapshot, entries above index are allowed and are discarded,
// and every segment file is dropped so a restart cannot replay the
// diverged tail. A nil snapshot resets to empty state at index.
func (l *Log) Reset(index uint64, snapshot io.Reader) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.dir != "" {
		if l.active != nil {
			l.active.Close()
			l.active = nil
			l.activeCount = 0
		}
		entries, err := os.ReadDir(l.dir)
		if err != nil {
			return err
		}
		oldSnap := l.snapIndex
		if err := l.writeSnapshotLocked(index, func(w io.Writer) error {
			if snapshot == nil {
				return nil
			}
			_, err := io.Copy(w, snapshot)
			return err
		}); err != nil {
			return err
		}
		// The new snapshot is durable; everything below is cleanup that a
		// crash may skip — leftover files are either skipped or re-detected
		// as divergence by the replication layer on the next push.
		for _, e := range entries {
			if _, ok := parseIndexed(e.Name(), "seg-"); ok {
				os.Remove(filepath.Join(l.dir, e.Name()))
			}
		}
		if oldSnap != index {
			os.Remove(filepath.Join(l.dir, snapName(oldSnap)))
		}
	} else if snapshot != nil {
		if _, err := io.Copy(io.Discard, snapshot); err != nil {
			return err
		}
	}
	l.snapIndex = index
	l.last = index
	l.recs = nil
	l.commit = index
	l.cond.Broadcast()
	return nil
}

// Bootstrap seeds an empty log with a base snapshot at index 0 — the
// migration path for legacy single-file WALs: the old file's contents
// become the pre-log state and the log starts at index 1. It is a no-op
// error on a non-empty log.
func (l *Log) Bootstrap(snapshot io.Reader) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.last != 0 || l.snapIndex != 0 || len(l.recs) != 0 {
		return fmt.Errorf("%s: bootstrap on a non-empty log", l.opts.name())
	}
	if l.dir == "" {
		_, err := io.Copy(io.Discard, snapshot)
		return err
	}
	return l.writeSnapshotLocked(0, func(w io.Writer) error {
		_, err := io.Copy(w, snapshot)
		return err
	})
}

// HasState reports whether the log carries any state to replay (a
// snapshot or at least one entry).
func (l *Log) HasState() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last != 0 || len(l.recs) != 0 {
		return true
	}
	if l.dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(l.dir, snapName(l.snapIndex)))
	return err == nil
}

// writeSnapshotLocked writes the snapshot stream crash-safely: temp
// file in the same directory, fsync, atomic rename, directory fsync.
func (l *Log) writeSnapshotLocked(index uint64, write func(io.Writer) error) error {
	final := filepath.Join(l.dir, snapName(index))
	tmp, err := os.CreateTemp(l.dir, snapName(index)+".tmp-*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	werr := write(bw)
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if werr != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return werr
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, err := os.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Compact folds every entry at or below index into a fresh snapshot
// written by the state machine's snapshot callback, then truncates the
// log: fully covered segments and the old snapshot are deleted. The
// caller must guarantee the snapshot reflects exactly the state after
// applying entries <= index — the usual pattern is to call Compact with
// the state machine's lock held, passing its serializer.
//
// Crash safety: the snapshot lands via temp-file + fsync + rename, so a
// crash at any point leaves either the old snapshot+segments (rename
// not reached) or the new snapshot plus stale segment files that the
// next Open skips past and removes.
func (l *Log) Compact(index uint64, snapshot func(io.Writer) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if index > l.last {
		return fmt.Errorf("%s: compact at %d beyond log end %d", l.opts.name(), index, l.last)
	}
	if index < l.snapIndex {
		return fmt.Errorf("%s: compact at %d behind snapshot %d", l.opts.name(), index, l.snapIndex)
	}
	oldSnap := l.snapIndex
	if l.dir != "" {
		if err := l.writeSnapshotLocked(index, snapshot); err != nil {
			return err
		}
		// The snapshot is durable; everything below is cleanup that a
		// crash may skip and the next Open finishes.
		if l.active != nil {
			l.active.Sync()
			l.active.Close()
			l.active = nil
			l.activeCount = 0
		}
		entries, err := os.ReadDir(l.dir)
		if err == nil {
			// A segment is deletable when every record it holds is
			// <= index: its first index <= index and the next segment
			// starts at or below index+1 (or it is the last segment and
			// the log end is <= index).
			var segFirsts []uint64
			for _, e := range entries {
				if v, ok := parseIndexed(e.Name(), "seg-"); ok {
					segFirsts = append(segFirsts, v)
				}
			}
			sort.Slice(segFirsts, func(i, j int) bool { return segFirsts[i] < segFirsts[j] })
			for i, first := range segFirsts {
				end := l.last
				if i+1 < len(segFirsts) {
					end = segFirsts[i+1] - 1
				}
				if end <= index {
					os.Remove(filepath.Join(l.dir, segName(first)))
				}
			}
		}
		if oldSnap != index {
			os.Remove(filepath.Join(l.dir, snapName(oldSnap)))
		}
	} else if err := snapshot(io.Discard); err != nil {
		return err
	}
	if drop := int(index - l.snapIndex); drop < len(l.recs) {
		l.recs = append([]Record(nil), l.recs[drop:]...)
	} else {
		l.recs = nil
	}
	l.snapIndex = index
	l.compactions++
	return nil
}

// Replay restores the newest snapshot (restore is called only when one
// exists) and applies every retained entry in index order. It is how a
// state machine loads from its log at startup.
func (l *Log) Replay(restore func(io.Reader) error, apply func(Record) error) error {
	l.mu.Lock()
	dir := l.dir
	snap := l.snapIndex
	recs := append([]Record(nil), l.recs...)
	l.mu.Unlock()
	if dir != "" {
		f, err := os.Open(filepath.Join(dir, snapName(snap)))
		if err == nil {
			rerr := restore(f)
			f.Close()
			if rerr != nil {
				return fmt.Errorf("%s: restore snapshot %d: %w", l.opts.name(), snap, rerr)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	for _, rec := range recs {
		if err := apply(rec); err != nil {
			return fmt.Errorf("%s: apply entry %d: %w", l.opts.name(), rec.Index, err)
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active != nil {
		return l.active.Sync()
	}
	return nil
}

// Stats returns the log's counters and gauges.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		LastIndex:   l.last,
		CommitIndex: l.commit,
		SnapIndex:   l.snapIndex,
		Entries:     len(l.recs),
		Appends:     l.appends,
		Compactions: l.compactions,
	}
}

// Close syncs and closes the active segment and wakes every waiter.
// Further mutations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.cond.Broadcast()
	if l.active != nil {
		l.active.Sync()
		err := l.active.Close()
		l.active = nil
		return err
	}
	return nil
}
