package lcm

import (
	"math"
	"math/rand"
	"testing"
)

func twoTaskFixture(n1, n2 int, seed int64) ([][][]float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int, scale float64) ([][]float64, []float64) {
		X := make([][]float64, n)
		Y := make([]float64, n)
		for i := range X {
			x := rng.Float64()
			X[i] = []float64{x}
			Y[i] = scale*math.Sin(2*math.Pi*x) + 0.05*rng.NormFloat64()
		}
		return X, Y
	}
	X1, Y1 := mk(n1, 1)
	X2, Y2 := mk(n2, 1.6)
	return [][][]float64{X1, X2}, [][]float64{Y1, Y2}
}

// Fixed seed ⇒ bit-identical fitted model whether the fit runs on 1
// worker or 8: restarts, covariance assembly and gradient reductions
// all write index-disjoint state with ordered reductions.
func TestLCMFitDeterministicAcrossWorkers(t *testing.T) {
	X, Y := twoTaskFixture(20, 6, 31)
	fit := func(workers int) *Model {
		m, err := Fit(X, Y, Options{Seed: 3, Restarts: 3, MaxIter: 15, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := fit(1)
	probe := [][]float64{{0.1}, {0.45}, {0.8}}
	for _, w := range []int{2, 8} {
		m := fit(w)
		for q := range ref.logLen {
			for d := range ref.logLen[q] {
				if m.logLen[q][d] != ref.logLen[q][d] {
					t.Fatalf("workers=%d: logLen[%d][%d] differs", w, q, d)
				}
			}
			for ti := range ref.aq[q] {
				if m.aq[q][ti] != ref.aq[q][ti] || m.logKappa[q][ti] != ref.logKappa[q][ti] {
					t.Fatalf("workers=%d: coregionalization params differ", w)
				}
			}
		}
		for ti := range ref.logNoise {
			if m.logNoise[ti] != ref.logNoise[ti] {
				t.Fatalf("workers=%d: noise differs", w)
			}
		}
		for task := 0; task < 2; task++ {
			for _, x := range probe {
				m1, s1, _ := ref.Predict(task, x)
				m2, s2, _ := m.Predict(task, x)
				if m1 != m2 || s1 != s2 {
					t.Fatalf("workers=%d task %d: prediction differs", w, task)
				}
			}
		}
		if ref.TaskCorrelation(0, 1) != m.TaskCorrelation(0, 1) {
			t.Fatalf("workers=%d: task correlation differs", w)
		}
	}
}
