package lcm

import (
	"math"
	"math/rand"
	"testing"
)

// makeCorrelatedTasks builds two tasks that are shifted/scaled versions
// of the same underlying function.
func makeCorrelatedTasks(nSrc, nTgt int, seed int64) (X [][][]float64, Y [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	f := func(x float64) float64 { return math.Sin(2*math.Pi*x) + 0.5*x }
	Xs := make([][]float64, nSrc)
	Ys := make([]float64, nSrc)
	for i := range Xs {
		x := rng.Float64()
		Xs[i] = []float64{x}
		Ys[i] = f(x)
	}
	Xt := make([][]float64, nTgt)
	Yt := make([]float64, nTgt)
	for i := range Xt {
		x := rng.Float64()
		Xt[i] = []float64{x}
		Yt[i] = 2*f(x) + 1 // perfectly correlated, different scale
	}
	return [][][]float64{Xs, Xt}, [][]float64{Ys, Yt}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("expected error for no tasks")
	}
	if _, err := Fit([][][]float64{{}}, [][]float64{{}}, Options{}); err == nil {
		t.Fatal("expected ErrNoData")
	}
	if _, err := Fit([][][]float64{{{0.5}}}, [][]float64{{1, 2}}, Options{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Fit([][][]float64{{{0.5}, {0.1, 0.2}}}, [][]float64{{1, 2}}, Options{}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	// Crowd-fed histories can carry NaN/Inf; Fit must reject them with a
	// recoverable error (the degradation trigger), never factorize them.
	if _, err := Fit([][][]float64{{{math.NaN()}}}, [][]float64{{1}}, Options{}); err == nil {
		t.Fatal("expected non-finite input error")
	}
	if _, err := Fit([][][]float64{{{0.5}}}, [][]float64{{math.Inf(1)}}, Options{}); err == nil {
		t.Fatal("expected non-finite target error")
	}
}

func TestSingleTaskBehavesLikeGP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 15
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		Y[i] = x * x
	}
	m, err := Fit([][][]float64{X}, [][]float64{Y}, Options{Seed: 1, MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 0.5, 0.8} {
		mean, _, _ := m.Predict(0, []float64{x})
		if math.Abs(mean-x*x) > 0.1 {
			t.Fatalf("predict(%v) = %v, want ~%v", x, mean, x*x)
		}
	}
}

func TestTransferImprovesSparseTarget(t *testing.T) {
	// 40 source samples, 3 target samples of a correlated function.
	X, Y := makeCorrelatedTasks(40, 3, 2)
	m, err := Fit(X, Y, Options{Seed: 2, MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) float64 { return 2*(math.Sin(2*math.Pi*x)+0.5*x) + 1 }
	var mseLCM float64
	probe := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	for _, x := range probe {
		mean, _, _ := m.Predict(1, []float64{x})
		mseLCM += (mean - f(x)) * (mean - f(x))
	}
	mseLCM /= float64(len(probe))
	// A target-only model from 3 points cannot track a two-period
	// oscillation; the LCM with 40 correlated source samples should.
	if mseLCM > 0.5 {
		t.Fatalf("LCM transfer MSE too high: %v", mseLCM)
	}
	// Learned correlation should be clearly positive.
	if c := m.TaskCorrelation(0, 1); c < 0.3 {
		t.Fatalf("task correlation = %v, want strongly positive", c)
	}
}

func TestEmptyTargetTask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20
	Xs := make([][]float64, n)
	Ys := make([]float64, n)
	for i := range Xs {
		x := rng.Float64()
		Xs[i] = []float64{x}
		Ys[i] = math.Cos(3 * x)
	}
	m, err := Fit([][][]float64{Xs, nil}, [][]float64{Ys, nil}, Options{Seed: 3, MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	mean, std, _ := m.Predict(1, []float64{0.5})
	if math.IsNaN(mean) || math.IsNaN(std) || std <= 0 {
		t.Fatalf("empty-target prediction invalid: %v ± %v", mean, std)
	}
}

func TestUnequalSampleCounts(t *testing.T) {
	X, Y := makeCorrelatedTasks(30, 7, 4)
	m, err := Fit(X, Y, Options{Seed: 4, MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTasks() != 2 || m.Dim() != 1 {
		t.Fatal("metadata wrong")
	}
	// Predictions for both tasks must be finite with positive std.
	for task := 0; task < 2; task++ {
		mean, std, _ := m.Predict(task, []float64{0.42})
		if math.IsNaN(mean) || std <= 0 {
			t.Fatalf("task %d: invalid prediction", task)
		}
	}
}

func TestNLLGradientMatchesNumeric(t *testing.T) {
	X, Y := makeCorrelatedTasks(8, 4, 5)
	m := &Model{numTasks: 2, dim: 1, q: 2}
	m.kerns = nil
	// Build via Fit internals: easiest is to run Fit with 1 restart and
	// verify the gradient at the canonical init point on a fresh model.
	mm, err := Fit(X, Y, Options{Seed: 5, Restarts: 1, MaxIter: 1, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	// Rebuild the standardized stacked targets exactly as Fit does.
	ys := make([]float64, 0, 12)
	for task := range Y {
		mean, sd := standardStats(Y[task])
		for _, v := range Y[task] {
			ys = append(ys, (v-mean)/sd)
		}
	}
	rng := rand.New(rand.NewSource(99))
	theta := mm.initTheta(rng, false)
	sc := mm.newFitScratch()
	_, grad := mm.nllGrad(ys, theta, 1, sc)
	const eps = 1e-6
	for p := 0; p < len(theta); p += 3 { // spot-check a third of the params
		tp := append([]float64(nil), theta...)
		tp[p] += eps
		fp, _ := mm.nllGrad(ys, tp, 1, sc)
		tp[p] -= 2 * eps
		fm, _ := mm.nllGrad(ys, tp, 1, sc)
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-grad[p]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", p, grad[p], num)
		}
	}
}

func TestPredictErrorsOnBadTask(t *testing.T) {
	// Out-of-range task indices and wrong-dimension inputs can arrive
	// from crowd-supplied data; they must come back as errors, never as
	// a panic that takes down a session.
	X, Y := makeCorrelatedTasks(5, 5, 6)
	m, err := Fit(X, Y, Options{Seed: 6, Restarts: 1, MaxIter: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Predict(5, []float64{0.5}); err == nil {
		t.Fatal("expected error for out-of-range task")
	}
	if _, _, err := m.Predict(-1, []float64{0.5}); err == nil {
		t.Fatal("expected error for negative task")
	}
	if _, _, err := m.Predict(0, []float64{0.5, 0.5}); err == nil {
		t.Fatal("expected error for wrong input dimension")
	}
}
