// Package lcm implements the Linear Coregionalization Model used by
// GPTune-style multitask learning: a joint Gaussian process over several
// tasks whose cross-task covariance is
//
//	K[(i,a),(j,b)] = Σ_q B_q[i,j] · k_q(x_a, x_b),  B_q = a_q·a_qᵀ + diag(κ_q)
//
// with one ARD kernel k_q per latent process. The model supports an
// unequal number of samples per task, which is what enables the paper's
// Multitask(TS) scheme (many true source samples, few target samples).
package lcm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gptunecrowd/internal/kernel"
	"gptunecrowd/internal/linalg"
	"gptunecrowd/internal/optimize"
	"gptunecrowd/internal/parallel"
)

// ErrNoData is returned when every task is empty.
var ErrNoData = errors.New("lcm: no training data in any task")

// Options configures an LCM fit.
type Options struct {
	Q           int         // number of latent processes (default min(tasks, 3))
	Kernel      kernel.Type // latent kernel family (default Matern52)
	Categorical []bool      // per-dimension categorical flags
	Restarts    int         // multi-start count (default 2)
	MaxIter     int         // L-BFGS iterations per start (default 50)
	Seed        int64
	// Workers bounds the parallelism of the fit (restart fan-out, stacked
	// covariance assembly, gradient reduction). <= 0 means the engine
	// default: GPTUNE_WORKERS when set, else GOMAXPROCS. Results are
	// bit-identical for every worker count at a fixed Seed.
	Workers int
}

// Model is a fitted LCM.
type Model struct {
	numTasks int
	dim      int
	q        int
	kerns    []*kernel.Kernel // one per latent process (unit variance)

	logLen   [][]float64 // [q][dim]
	aq       [][]float64 // [q][task]
	logKappa [][]float64 // [q][task]
	logNoise []float64   // [task] log noise variance

	// Stacked training data.
	x     [][]float64 // all samples
	task  []int       // task index per sample
	alpha []float64
	chol  *linalg.Cholesky

	meanY, stdY []float64 // per-task standardization
}

// Fit trains an LCM on per-task datasets. X[t] and Y[t] hold the samples
// of task t; tasks may be empty (e.g. a target task with no evaluations
// yet — its coregionalization weights then stay at their prior values).
func Fit(X [][][]float64, Y [][]float64, opts Options) (*Model, error) {
	numTasks := len(X)
	if numTasks == 0 || len(Y) != numTasks {
		return nil, fmt.Errorf("lcm: need matching task datasets, got %d/%d", len(X), len(Y))
	}
	dim := 0
	total := 0
	for t := range X {
		if len(X[t]) != len(Y[t]) {
			return nil, fmt.Errorf("lcm: task %d has %d inputs but %d targets", t, len(X[t]), len(Y[t]))
		}
		total += len(X[t])
		for _, x := range X[t] {
			if dim == 0 {
				dim = len(x)
			}
			if len(x) != dim {
				return nil, fmt.Errorf("lcm: inconsistent input dimension in task %d", t)
			}
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("lcm: task %d has a non-finite input coordinate (%v)", t, v)
				}
			}
		}
		for i, y := range Y[t] {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return nil, fmt.Errorf("lcm: task %d target %d is not finite (%v)", t, i, y)
			}
		}
	}
	if total == 0 {
		return nil, ErrNoData
	}
	if opts.Q <= 0 {
		opts.Q = numTasks
		if opts.Q > 3 {
			opts.Q = 3
		}
	}
	if opts.Kernel == kernel.Auto {
		opts.Kernel = kernel.Matern52
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 2
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}

	m := &Model{numTasks: numTasks, dim: dim, q: opts.Q}
	m.kerns = make([]*kernel.Kernel, opts.Q)
	for q := range m.kerns {
		m.kerns[q] = &kernel.Kernel{Type: opts.Kernel, Dim: dim, Categorical: opts.Categorical}
	}
	// Per-task standardization; empty tasks get (0, 1).
	m.meanY = make([]float64, numTasks)
	m.stdY = make([]float64, numTasks)
	ys := make([]float64, 0, total)
	for t := range Y {
		mean, sd := standardStats(Y[t])
		m.meanY[t], m.stdY[t] = mean, sd
	}
	for t := range X {
		for i, x := range X[t] {
			m.x = append(m.x, x)
			m.task = append(m.task, t)
			ys = append(ys, (Y[t][i]-m.meanY[t])/m.stdY[t])
		}
	}

	// Start points are drawn up-front from a single seeded stream, so the
	// restart fan-out below cannot perturb them.
	rng := rand.New(rand.NewSource(opts.Seed))
	starts := make([][]float64, 0, opts.Restarts)
	for s := 0; s < opts.Restarts; s++ {
		starts = append(starts, m.initTheta(rng, s == 0))
	}
	// Restarts run concurrently with private scratch each; the argmin
	// reduction is ordered, so the winner is worker-count independent.
	best := optimize.MultiStartParallel(starts, opts.Workers, func(_ int, x0 []float64) optimize.Result {
		sc := m.newFitScratch()
		obj := func(theta []float64) (float64, []float64) {
			return m.nllGrad(ys, theta, opts.Workers, sc)
		}
		return optimize.LBFGS(obj, x0, optimize.LBFGSConfig{MaxIter: opts.MaxIter})
	})
	if math.IsInf(best.F, 1) {
		return nil, errors.New("lcm: hyperparameter optimization failed to find a feasible point")
	}
	m.unpack(best.X)
	if err := m.factorize(ys, opts.Workers); err != nil {
		return nil, err
	}
	return m, nil
}

func standardStats(y []float64) (mean, sd float64) {
	if len(y) == 0 {
		return 0, 1
	}
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(y)))
	if sd < 1e-12 {
		sd = 1
	}
	return mean, sd
}

// Parameter packing order:
//
//	for q: logLen[q][0..dim) , aq[q][0..T), logKappa[q][0..T)
//	then logNoise[0..T)
func (m *Model) numParams() int {
	return m.q*(m.dim+2*m.numTasks) + m.numTasks
}

func (m *Model) initTheta(rng *rand.Rand, canonical bool) []float64 {
	theta := make([]float64, m.numParams())
	idx := 0
	for q := 0; q < m.q; q++ {
		for d := 0; d < m.dim; d++ {
			if canonical {
				theta[idx] = math.Log(0.3)
			} else {
				theta[idx] = math.Log(0.05) + rng.Float64()*(math.Log(2)-math.Log(0.05))
			}
			idx++
		}
		for t := 0; t < m.numTasks; t++ {
			if canonical {
				// Identity-like init: latent q drives task q (mod T) strongly.
				if t%m.q == q {
					theta[idx] = 1
				} else {
					theta[idx] = 0.3
				}
			} else {
				theta[idx] = rng.NormFloat64() * 0.7
			}
			idx++
		}
		for t := 0; t < m.numTasks; t++ {
			theta[idx] = math.Log(0.1)
			idx++
		}
	}
	for t := 0; t < m.numTasks; t++ {
		theta[idx] = math.Log(1e-3)
		idx++
	}
	return theta
}

func (m *Model) unpack(theta []float64) {
	m.logLen = make([][]float64, m.q)
	m.aq = make([][]float64, m.q)
	m.logKappa = make([][]float64, m.q)
	idx := 0
	for q := 0; q < m.q; q++ {
		m.logLen[q] = append([]float64(nil), theta[idx:idx+m.dim]...)
		idx += m.dim
		m.aq[q] = append([]float64(nil), theta[idx:idx+m.numTasks]...)
		idx += m.numTasks
		m.logKappa[q] = append([]float64(nil), theta[idx:idx+m.numTasks]...)
		idx += m.numTasks
	}
	m.logNoise = append([]float64(nil), theta[idx:idx+m.numTasks]...)
}

// lcmParams is a reusable unpacked view of a packed theta vector,
// mirroring the Model's parameter layout without allocating per
// objective evaluation.
type lcmParams struct {
	logLen   [][]float64 // [q][dim]
	aq       [][]float64 // [q][task]
	logKappa [][]float64 // [q][task]
	logNoise []float64   // [task]
}

func newLCMParams(q, dim, tasks int) *lcmParams {
	p := &lcmParams{
		logLen:   make([][]float64, q),
		aq:       make([][]float64, q),
		logKappa: make([][]float64, q),
		logNoise: make([]float64, tasks),
	}
	for i := 0; i < q; i++ {
		p.logLen[i] = make([]float64, dim)
		p.aq[i] = make([]float64, tasks)
		p.logKappa[i] = make([]float64, tasks)
	}
	return p
}

// unpack fills p from theta following the Model packing order.
func (p *lcmParams) unpack(theta []float64) {
	idx := 0
	for q := range p.logLen {
		idx += copy(p.logLen[q], theta[idx:idx+len(p.logLen[q])])
		idx += copy(p.aq[q], theta[idx:idx+len(p.aq[q])])
		idx += copy(p.logKappa[q], theta[idx:idx+len(p.logKappa[q])])
	}
	copy(p.logNoise, theta[idx:idx+len(p.logNoise)])
}

// fitScratch holds the per-restart buffers of the LCM objective: latent
// kernel matrices and their gradients, the stacked covariance and the
// coregionalization blocks. Reusing them removes the dominant
// allocations from the fit loop; each optimizer run owns one scratch,
// so concurrent restarts never contend.
type fitScratch struct {
	params *lcmParams
	hq     *kernel.Hyper
	baseK  []*linalg.Matrix   // [q] latent Gram matrices
	baseG  [][]*linalg.Matrix // [q][dim+1] derivative matrices (variance slot unused)
	K      *linalg.Matrix     // stacked covariance
	bq     []*linalg.Matrix   // [q] T×T coregionalization blocks
}

func (m *Model) newFitScratch() *fitScratch {
	n := len(m.x)
	sc := &fitScratch{
		params: newLCMParams(m.q, m.dim, m.numTasks),
		hq:     kernel.NewHyper(m.dim),
		baseK:  make([]*linalg.Matrix, m.q),
		baseG:  make([][]*linalg.Matrix, m.q),
		K:      linalg.NewMatrix(n, n),
		bq:     make([]*linalg.Matrix, m.q),
	}
	for q := 0; q < m.q; q++ {
		sc.baseK[q] = linalg.NewMatrix(n, n)
		sc.baseG[q] = make([]*linalg.Matrix, m.dim+1)
		for d := range sc.baseG[q] {
			sc.baseG[q][d] = linalg.NewMatrix(n, n)
		}
		sc.bq[q] = linalg.NewMatrix(m.numTasks, m.numTasks)
	}
	return sc
}

// bounds for the packed parameters.
var (
	lcmLogLenLo, lcmLogLenHi     = math.Log(0.01), math.Log(100.0)
	lcmALo, lcmAHi               = -10.0, 10.0
	lcmLogKapLo, lcmLogKapHi     = math.Log(1e-8), math.Log(100.0)
	lcmLogNoiseLo, lcmLogNoiseHi = math.Log(1e-8), math.Log(1.0)
)

// nllGrad computes the penalized negative log marginal likelihood of
// the stacked standardized targets plus its analytic gradient. The
// returned gradient slice is freshly allocated (the L-BFGS driver
// retains it across iterations); all large intermediates live in sc,
// which must be private to the calling goroutine. The parallel stages
// write index-disjoint state with fixed per-index summation order, so
// the result is bit-identical for every worker count.
func (m *Model) nllGrad(ys []float64, theta []float64, workers int, sc *fitScratch) (float64, []float64) {
	n := len(ys)
	grad := make([]float64, len(theta))
	penalty := 0.0
	pen := func(idx int, lo, hi float64) {
		const w = 10
		v := theta[idx]
		if v < lo {
			penalty += w * (lo - v) * (lo - v)
			grad[idx] += -2 * w * (lo - v)
		} else if v > hi {
			penalty += w * (v - hi) * (v - hi)
			grad[idx] += 2 * w * (v - hi)
		}
	}
	idx := 0
	for q := 0; q < m.q; q++ {
		for d := 0; d < m.dim; d++ {
			pen(idx, lcmLogLenLo, lcmLogLenHi)
			idx++
		}
		for t := 0; t < m.numTasks; t++ {
			pen(idx, lcmALo, lcmAHi)
			idx++
		}
		for t := 0; t < m.numTasks; t++ {
			pen(idx, lcmLogKapLo, lcmLogKapHi)
			idx++
		}
	}
	for t := 0; t < m.numTasks; t++ {
		pen(idx, lcmLogNoiseLo, lcmLogNoiseHi)
		idx++
	}

	// Unpack into reusable locals.
	ps := sc.params
	ps.unpack(theta)

	// Base latent kernel matrices and their length-scale gradients
	// (row-parallel inside MatrixGradsInto).
	baseK := sc.baseK // k_q(x_a, x_b)
	baseG := sc.baseG // per loglen dimension (+ unused variance slot)
	hq := sc.hq       // unit variance: LogVar = 0
	for q := 0; q < m.q; q++ {
		copy(hq.LogLength, ps.logLen[q])
		hq.LogVar = 0
		m.kerns[q].MatrixGradsInto(m.x, hq, baseK[q], baseG[q], workers)
	}
	// Coregionalization blocks B_q (tiny, serial).
	bq := sc.bq
	for q := 0; q < m.q; q++ {
		B := bq[q]
		for i := 0; i < m.numTasks; i++ {
			for j := 0; j < m.numTasks; j++ {
				v := ps.aq[q][i] * ps.aq[q][j]
				if i == j {
					v += math.Exp(ps.logKappa[q][i])
				}
				B.Set(i, j, v)
			}
		}
	}
	// Assemble the stacked covariance row-parallel: each row is owned by
	// one worker and accumulated in a fixed (q, b) order.
	K := sc.K
	parallel.For(n, workers, func(a int) {
		krow := K.Row(a)
		for b := range krow {
			krow[b] = 0
		}
		ta := m.task[a]
		for q := 0; q < m.q; q++ {
			ka := baseK[q].Row(a)
			B := bq[q]
			for b := 0; b < n; b++ {
				krow[b] += B.At(ta, m.task[b]) * ka[b]
			}
		}
		krow[a] += math.Exp(ps.logNoise[ta])
	})
	ch, err := linalg.NewCholesky(K)
	if err != nil {
		return math.Inf(1), grad
	}
	alpha := ch.SolveVec(ys)
	nll := 0.5*linalg.Dot(ys, alpha) + 0.5*ch.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)

	// W = K⁻¹ − α·αᵀ ; gradient g_p = 0.5 Σ_ab W[ab]·dK_p[ab].
	W := ch.InverseWorkers(workers)
	parallel.For(n, workers, func(a int) {
		wa := W.Row(a)
		aa := alpha[a]
		for b := 0; b < n; b++ {
			wa[b] -= aa * alpha[b]
		}
	})

	// The packed parameters are independent reductions over W, so the
	// fan-out is per parameter index; each one keeps the serial (a, b)
	// summation order.
	qBlock := m.dim + 2*m.numTasks
	noiseBase := m.q * qBlock
	parallel.For(len(theta), workers, func(p int) {
		if p >= noiseBase {
			// Noise: dK/dlogσ_t² = σ_t²·diag(task == t).
			t := p - noiseBase
			nv := math.Exp(ps.logNoise[t])
			var s float64
			for a := 0; a < n; a++ {
				if m.task[a] == t {
					s += W.At(a, a)
				}
			}
			grad[p] += 0.5 * nv * s
			return
		}
		q := p / qBlock
		switch r := p % qBlock; {
		case r < m.dim:
			// Length scales.
			d := r
			var s float64
			G := baseG[q][d]
			B := bq[q]
			for a := 0; a < n; a++ {
				wa := W.Row(a)
				ga := G.Row(a)
				ta := m.task[a]
				for b := 0; b < n; b++ {
					s += wa[b] * B.At(ta, m.task[b]) * ga[b]
				}
			}
			grad[p] += 0.5 * s
		case r < m.dim+m.numTasks:
			// a_q weights: dB[i,j]/da[t] = δ(i=t)a[j] + δ(j=t)a[i];
			// by symmetry of W and baseK,
			// g = Σ_{a:ta=t} Σ_b W[ab]·a_q[tb]·k_q[ab].
			t := r - m.dim
			var s float64
			for a := 0; a < n; a++ {
				if m.task[a] != t {
					continue
				}
				wa := W.Row(a)
				ka := baseK[q].Row(a)
				for b := 0; b < n; b++ {
					s += wa[b] * ps.aq[q][m.task[b]] * ka[b]
				}
			}
			grad[p] += s // the 0.5 cancels with the factor 2 from symmetry
		default:
			// κ_q: dB[i,j]/dlogκ[t] = δ(i=j=t)·κ_t.
			t := r - m.dim - m.numTasks
			kap := math.Exp(ps.logKappa[q][t])
			var s float64
			for a := 0; a < n; a++ {
				if m.task[a] != t {
					continue
				}
				wa := W.Row(a)
				ka := baseK[q].Row(a)
				for b := 0; b < n; b++ {
					if m.task[b] == t {
						s += wa[b] * ka[b]
					}
				}
			}
			grad[p] += 0.5 * kap * s
		}
	})
	return nll + penalty, grad
}

func (m *Model) factorize(ys []float64, workers int) error {
	n := len(ys)
	K := linalg.NewMatrix(n, n)
	hq := kernel.NewHyper(m.dim)
	for q := 0; q < m.q; q++ {
		copy(hq.LogLength, m.logLen[q])
		hq.LogVar = 0
		Kq := m.kerns[q].MatrixWorkers(m.x, hq, workers)
		parallel.For(n, workers, func(a int) {
			ta := m.task[a]
			row := K.Row(a)
			kqa := Kq.Row(a)
			for b := 0; b < n; b++ {
				row[b] += m.bAt(q, ta, m.task[b]) * kqa[b]
			}
		})
	}
	for a := 0; a < n; a++ {
		K.Add(a, a, math.Exp(m.logNoise[m.task[a]]))
	}
	ch, err := linalg.NewCholesky(K)
	if err != nil {
		return fmt.Errorf("lcm: covariance factorization failed: %w", err)
	}
	m.chol = ch
	m.alpha = ch.SolveVec(ys)
	return nil
}

func (m *Model) bAt(q, i, j int) float64 {
	v := m.aq[q][i] * m.aq[q][j]
	if i == j {
		v += math.Exp(m.logKappa[q][i])
	}
	return v
}

// NumTasks returns the number of tasks the model was trained over.
func (m *Model) NumTasks() int { return m.numTasks }

// Dim returns the input dimension.
func (m *Model) Dim() int { return m.dim }

// Predict returns the posterior mean and standard deviation for task t
// at input x, in the task's original output units. A task index outside
// the trained range returns an error — crowd-supplied indices must not
// be able to crash a long tuning session.
func (m *Model) Predict(t int, x []float64) (mean, std float64, err error) {
	if t < 0 || t >= m.numTasks {
		return 0, 0, fmt.Errorf("lcm: task %d out of range [0, %d)", t, m.numTasks)
	}
	if len(x) != m.dim {
		return 0, 0, fmt.Errorf("lcm: input has dimension %d, want %d", len(x), m.dim)
	}
	n := len(m.x)
	ks := make([]float64, n)
	hq := kernel.NewHyper(m.dim)
	prior := 0.0
	for q := 0; q < m.q; q++ {
		copy(hq.LogLength, m.logLen[q])
		hq.LogVar = 0
		for b := 0; b < n; b++ {
			ks[b] += m.bAt(q, t, m.task[b]) * m.kerns[q].Eval(x, m.x[b], hq)
		}
		prior += m.bAt(q, t, t)
	}
	mu := linalg.Dot(ks, m.alpha)
	v := m.chol.SolveVec(ks)
	variance := prior - linalg.Dot(ks, v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return m.meanY[t] + m.stdY[t]*mu, m.stdY[t] * math.Sqrt(variance), nil
}

// TaskCorrelation returns the model-implied correlation between tasks i
// and j, aggregated over the latent processes — a diagnostic for how
// much transfer the model has learned.
func (m *Model) TaskCorrelation(i, j int) float64 {
	var bij, bii, bjj float64
	for q := 0; q < m.q; q++ {
		bij += m.bAt(q, i, j)
		bii += m.bAt(q, i, i)
		bjj += m.bAt(q, j, j)
	}
	if bii <= 0 || bjj <= 0 {
		return 0
	}
	return bij / math.Sqrt(bii*bjj)
}
