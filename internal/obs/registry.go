// Package obs is the zero-dependency observability layer shared by the
// crowd server, client, task pool, volunteer workers and the tuner
// core. It bundles four concerns that every production deployment
// needs and that were previously scattered across ad-hoc stat maps:
//
//   - a typed metrics registry (counters, gauges, histograms) with
//     lock-free atomic hot paths and Prometheus text exposition;
//   - trace/span IDs with context propagation (client→server via the
//     X-Trace-ID header, submitter→worker via task lease metadata);
//   - log/slog helpers that stamp every record with the trace ID found
//     in its context;
//   - a debug HTTP mux (net/http/pprof + /metrics) served behind the
//     daemons' -debug-addr flag.
//
// Everything here uses only the standard library, so the tuner keeps
// its zero-external-dependency property.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to a metric series at
// registration time (e.g. the status class of a request counter).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind is the Prometheus exposition type of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one registered time series (a family member with a fixed
// label set).
type series interface {
	// expose appends exposition lines for this series. name is the
	// family name, labels the rendered label string ("" or `k="v",...`).
	expose(sb *strings.Builder, name, labels string)
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label-set keys in registration order
	series map[string]series
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration is idempotent: asking for an already-registered
// (name, labels) pair returns the existing collector, so independent
// subsystems (several tuning sessions, server middleware, the task
// pool) can share one registry without coordination. Registering the
// same name with a different type or help string panics — that is a
// programming error, not an operational condition.
//
// The hot paths (Counter.Add, Gauge.Set, Histogram.Observe) are
// lock-free atomics; the registry lock is only taken at registration
// and exposition time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// register resolves (name, labels) to its series, creating family and
// series as needed. make is called under the registry lock to build a
// missing series.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, make func() series) series {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, series: map[string]series{}}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, fam.kind))
	}
	s := fam.series[key]
	if s == nil {
		s = make()
		fam.series[key] = s
		fam.order = append(fam.order, key)
	}
	return s
}

// --- Counter

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(sb *strings.Builder, name, labels string) {
	writeSample(sb, name, labels, float64(c.v.Load()))
}

// Counter registers (or returns the existing) counter under name with
// the given constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func() series { return &Counter{} })
	c, ok := s.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a plain counter", name))
	}
	return c
}

// counterFunc samples a callback at exposition time — for counters
// maintained elsewhere (e.g. the task pool's cumulative counters).
type counterFunc struct{ f func() float64 }

func (c counterFunc) expose(sb *strings.Builder, name, labels string) {
	writeSample(sb, name, labels, c.f())
}

// CounterFunc registers a counter whose value is read from f at
// exposition time. Re-registering the same (name, labels) keeps the
// first callback.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func() series { return counterFunc{f: f} })
}

// --- Gauge

// Gauge is an integer metric that can go up and down (in-flight
// requests, queue depths).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) expose(sb *strings.Builder, name, labels string) {
	writeSample(sb, name, labels, float64(g.v.Load()))
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() series { return &Gauge{} })
	g, ok := s.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a plain gauge", name))
	}
	return g
}

// gaugeFunc samples a callback at exposition time.
type gaugeFunc struct{ f func() float64 }

func (g gaugeFunc) expose(sb *strings.Builder, name, labels string) {
	writeSample(sb, name, labels, g.f())
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time (point-in-time views like queue depth or held quarantine size).
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() series { return gaugeFunc{f: f} })
}

// --- Histogram

// DefDurationBuckets are the default histogram buckets for durations in
// seconds: 100µs .. 10s in roughly 2.5× steps, matching the Prometheus
// client defaults shifted one decade down (tuner stages are fast).
var DefDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram with an atomic
// Observe path: one atomic add on the bucket, one on the count, and a
// CAS loop on the float sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) expose(sb *strings.Builder, name, labels string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(sb, name+"_bucket", joinLabels(labels, fmt.Sprintf("le=%q", formatBound(b))), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(sb, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(sb, name+"_sum", labels, h.Sum())
	writeSample(sb, name+"_count", labels, float64(h.count.Load()))
}

// Histogram registers (or returns the existing) histogram. A nil
// buckets slice selects DefDurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, func() series {
		if buckets == nil {
			buckets = DefDurationBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		return h
	})
	h, ok := s.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is not a histogram", name))
	}
	return h
}

// Names returns the registered family names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// formatBound formats a bucket bound compactly ("0.005", "1", "+Inf").
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

func writeSample(sb *strings.Builder, name, labels string, v float64) {
	sb.WriteString(name)
	if labels != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		fmt.Fprintf(sb, "%d", int64(v))
	} else {
		fmt.Fprintf(sb, "%g", v)
	}
	sb.WriteByte('\n')
}
