package obs

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugMux returns the daemons' debug mux: the net/http/pprof handlers
// under /debug/pprof/ and, when reg is non-nil, the Prometheus
// exposition under /metrics. Served behind the -debug-addr flag of
// crowdserver and crowdworker — never on the public API listener.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}

// ServeDebug starts the debug listener on addr in a background
// goroutine and returns the server (Close/Shutdown to stop it). An
// empty addr is a no-op returning (nil, nil), so callers can pass the
// flag value straight through.
func ServeDebug(addr string, reg *Registry, logger *slog.Logger) (*http.Server, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           DebugMux(reg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger = Or(logger)
	logger.Info("debug server listening", "addr", ln.Addr().String())
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("debug server failed", "err", err)
		}
	}()
	return srv, nil
}
