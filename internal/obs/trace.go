package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"time"
)

// TraceHeader is the HTTP header that carries the trace ID between the
// crowd client and server. The server honours an incoming value (so a
// tuning run's uploads, queries and task operations share one trace)
// and echoes the assigned ID on every response.
const TraceHeader = "X-Trace-ID"

// maxTraceIDLen bounds accepted trace IDs; anything longer (or with
// exotic characters) is replaced server-side — the header is untrusted
// input.
const maxTraceIDLen = 64

type traceKey struct{}

// NewTraceID returns a fresh 128-bit trace ID as 32 hex characters.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 64-bit span ID as 16 hex characters.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// WithTrace returns ctx carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "".
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// EnsureTrace returns ctx guaranteed to carry a trace ID, generating
// one when absent, plus the ID.
func EnsureTrace(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}

// ValidTraceID reports whether an externally supplied trace ID is safe
// to adopt: non-empty, bounded length, and only unreserved URL/log
// characters (hex digits, letters, digits, '-', '_', '.').
func ValidTraceID(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Span is a lightweight timed operation inside a trace: a name, its own
// span ID, and a start time. It carries no parent linkage — just enough
// structure to stamp log lines and observe stage durations.
type Span struct {
	Trace string
	ID    string
	Name  string
	start time.Time
}

// StartSpan opens a span under the context's trace (generating a trace
// ID if the context has none) and returns the derived context.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	ctx, trace := EnsureTrace(ctx)
	return ctx, &Span{Trace: trace, ID: NewSpanID(), Name: name, start: time.Now()}
}

// Duration returns the time elapsed since the span started.
func (s *Span) Duration() time.Duration { return time.Since(s.start) }

// End finishes the span, observing its duration into hist (when
// non-nil) and returning it.
func (s *Span) End(hist *Histogram) time.Duration {
	d := s.Duration()
	if hist != nil {
		hist.Observe(d.Seconds())
	}
	return d
}
