package obs

import (
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE line per
// family followed by one sample line per series, families in
// registration order, series in registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sb strings.Builder
	for _, name := range r.order {
		fam := r.families[name]
		if fam.help != "" {
			sb.WriteString("# HELP ")
			sb.WriteString(fam.name)
			sb.WriteByte(' ')
			sb.WriteString(escapeHelp(fam.help))
			sb.WriteByte('\n')
		}
		sb.WriteString("# TYPE ")
		sb.WriteString(fam.name)
		sb.WriteByte(' ')
		sb.WriteString(string(fam.kind))
		sb.WriteByte('\n')
		for _, key := range fam.order {
			fam.series[key].expose(&sb, fam.name, key)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in Prometheus text format (the /metrics
// endpoint). GET and HEAD only.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}
