package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// traceHandler decorates a slog.Handler so every record logged with a
// context carrying a trace ID gets a "trace" attribute. This is what
// makes one tuning evaluation followable across the client retry loop,
// the server middleware chain and the worker lease lifecycle: all three
// log through handlers wrapped here, with the same ID in their
// contexts.
type traceHandler struct {
	slog.Handler
}

func (h traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := TraceID(ctx); id != "" {
		r.AddAttrs(slog.String("trace", id))
	}
	return h.Handler.Handle(ctx, r)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{Handler: h.Handler.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{Handler: h.Handler.WithGroup(name)}
}

// WithTraceAttrs wraps a handler so records carry the context's trace
// ID as a "trace" attribute.
func WithTraceAttrs(h slog.Handler) slog.Handler { return traceHandler{Handler: h} }

// LogOptions configures NewLogger.
type LogOptions struct {
	// Level is the minimum level (default slog.LevelInfo).
	Level slog.Leveler
	// JSON selects JSON output; false means logfmt-style text.
	JSON bool
}

// NewLogger builds a trace-aware slog.Logger writing to w.
func NewLogger(w io.Writer, opts LogOptions) *slog.Logger {
	hopts := &slog.HandlerOptions{Level: opts.Level}
	var h slog.Handler
	if opts.JSON {
		h = slog.NewJSONHandler(w, hopts)
	} else {
		h = slog.NewTextHandler(w, hopts)
	}
	return slog.New(WithTraceAttrs(h))
}

// ParseLevel maps the usual flag spellings ("debug", "info", "warn",
// "warning", "error", case-insensitive) to slog levels — shared by the
// daemons' -log-level flags.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// discardHandler drops everything (slog.DiscardHandler exists only from
// Go 1.24; the module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Nop returns a logger that discards every record — the nil-safe
// default for components whose callers did not configure logging.
func Nop() *slog.Logger { return slog.New(discardHandler{}) }

// Or returns l when non-nil and a no-op logger otherwise, so components
// can log unconditionally.
func Or(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return Nop()
}
