package obs

import (
	"bytes"
	"context"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests", L("code", "2xx"))
	c.Add(3)
	r.Counter("requests_total", "total requests", L("code", "5xx")).Inc()
	g := r.Gauge("in_flight", "in-flight requests")
	g.Set(7)
	g.Dec()
	r.GaugeFunc("queue_depth", "queued items", func() float64 { return 4 })
	r.CounterFunc("external_total", "externally maintained", func() float64 { return 9 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total total requests",
		"# TYPE requests_total counter",
		`requests_total{code="2xx"} 3`,
		`requests_total{code="5xx"} 1`,
		"# TYPE in_flight gauge",
		"in_flight 6",
		"queue_depth 4",
		"external_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "help")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	h1 := r.Histogram("h_seconds", "help", nil)
	h2 := r.Histogram("h_seconds", "help", nil)
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched re-registration did not panic")
		}
	}()
	r.Gauge("c_total", "help")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum %v", h.Sum())
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "concurrent", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-4000) > 1e-6 {
		t.Fatalf("sum %v, want 4000", h.Sum())
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "x_total 1") {
		t.Fatalf("body: %s", buf.String())
	}
	post, err := srv.Client().Post(srv.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST /metrics status %d, want 405", post.StatusCode)
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("background context has a trace")
	}
	ctx2, id := EnsureTrace(ctx)
	if id == "" || TraceID(ctx2) != id {
		t.Fatalf("EnsureTrace: id=%q ctx=%q", id, TraceID(ctx2))
	}
	if len(id) != 32 || !ValidTraceID(id) {
		t.Fatalf("generated trace id %q", id)
	}
	ctx3, again := EnsureTrace(ctx2)
	if again != id || ctx3 != ctx2 {
		t.Fatal("EnsureTrace regenerated an existing trace")
	}
	for in, want := range map[string]bool{
		"abc-DEF_123.x":         true,
		"":                      false,
		"has space":             false,
		"läsion":                false,
		strings.Repeat("a", 65): false,
		strings.Repeat("a", 64): true,
	} {
		if got := ValidTraceID(in); got != want {
			t.Fatalf("ValidTraceID(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestSpanObserves(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", "span", nil)
	ctx, sp := StartSpan(context.Background(), "fit")
	if sp.Trace == "" || sp.ID == "" || TraceID(ctx) != sp.Trace {
		t.Fatalf("span: %+v trace=%q", sp, TraceID(ctx))
	}
	if d := sp.End(h); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count %d", h.Count())
	}
}

func TestLoggerTraceAttr(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, LogOptions{JSON: true, Level: slog.LevelDebug})
	ctx := WithTrace(context.Background(), "trace-xyz")
	logger.InfoContext(ctx, "hello", "k", "v")
	logger.Info("no-trace")
	out := buf.String()
	if !strings.Contains(out, `"trace":"trace-xyz"`) {
		t.Fatalf("trace attr missing: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || strings.Contains(lines[1], "trace-xyz") {
		t.Fatalf("trace leaked into traceless record: %s", out)
	}
	// Nop must swallow everything without panicking.
	Nop().InfoContext(ctx, "dropped")
	Or(nil).Error("dropped too")
	if l := Or(logger); l != logger {
		t.Fatal("Or replaced a non-nil logger")
	}
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("dbg_total", "x").Inc()
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()
	for path, wantIn := range map[string]string{
		"/metrics":      "dbg_total 1",
		"/debug/pprof/": "profiles",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(buf.String(), wantIn) {
			t.Fatalf("%s: status %d body %.120q", path, resp.StatusCode, buf.String())
		}
	}
}
