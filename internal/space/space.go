// Package space models the three GPTuneCrowd parameter spaces — the
// input (task) space, the tuning-parameter space and the output space —
// with integer, real and categorical parameters, normalization to the
// unit hypercube used by the surrogate models, and the JSON form used by
// meta descriptions (Section IV-A of the paper).
package space

import (
	"encoding/json"
	"fmt"
	"math"
)

// Kind enumerates the supported parameter types.
type Kind int

const (
	// Real is a continuous parameter over [Lo, Hi).
	Real Kind = iota
	// Integer is a discrete parameter over the half-open range [Lo, Hi),
	// matching the paper's convention (e.g. mb ∈ [1, 16)).
	Integer
	// Categorical is an unordered finite choice.
	Categorical
)

// String returns the meta-description type name.
func (k Kind) String() string {
	switch k {
	case Real:
		return "real"
	case Integer:
		return "integer"
	case Categorical:
		return "categorical"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a meta-description type name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "real":
		return Real, nil
	case "integer", "int":
		return Integer, nil
	case "categorical":
		return Categorical, nil
	}
	return 0, fmt.Errorf("space: unknown parameter type %q", s)
}

// Param describes one parameter of a space.
type Param struct {
	Name       string
	Kind       Kind
	Lo, Hi     float64  // bounds for Real ([Lo,Hi]) and Integer ([Lo,Hi))
	Categories []string // for Categorical
	// LogScale, when set on a Real or Integer parameter, makes the
	// normalized coordinate vary the parameter geometrically — useful
	// for parameters spanning orders of magnitude.
	LogScale bool
}

// Validate checks internal consistency.
func (p Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("space: parameter with empty name")
	}
	switch p.Kind {
	case Real:
		if !(p.Lo < p.Hi) {
			return fmt.Errorf("space: parameter %q: bad real range [%v,%v)", p.Name, p.Lo, p.Hi)
		}
		if p.LogScale && p.Lo <= 0 {
			return fmt.Errorf("space: parameter %q: log scale requires positive lower bound", p.Name)
		}
	case Integer:
		lo, hi := math.Ceil(p.Lo), math.Floor(p.Hi)
		if !(lo < hi) {
			return fmt.Errorf("space: parameter %q: bad integer range [%v,%v)", p.Name, p.Lo, p.Hi)
		}
		if p.LogScale && lo <= 0 {
			return fmt.Errorf("space: parameter %q: log scale requires positive lower bound", p.Name)
		}
	case Categorical:
		if len(p.Categories) == 0 {
			return fmt.Errorf("space: parameter %q: categorical with no categories", p.Name)
		}
		seen := make(map[string]bool, len(p.Categories))
		for _, c := range p.Categories {
			if seen[c] {
				return fmt.Errorf("space: parameter %q: duplicate category %q", p.Name, c)
			}
			seen[c] = true
		}
	default:
		return fmt.Errorf("space: parameter %q: unknown kind %d", p.Name, p.Kind)
	}
	return nil
}

// NumLevels returns the number of distinct values for discrete kinds
// (0 for Real).
func (p Param) NumLevels() int {
	switch p.Kind {
	case Integer:
		return int(math.Floor(p.Hi) - math.Ceil(p.Lo))
	case Categorical:
		return len(p.Categories)
	}
	return 0
}

// Decode maps a normalized coordinate u ∈ [0,1] to the parameter's value:
// float64 for Real, int for Integer, string for Categorical.
func (p Param) Decode(u float64) interface{} {
	if math.IsNaN(u) {
		// NaN survives both clamps below (every comparison is false)
		// and would index Categories with a huge negative value. Crowd
		// checkpoints make NaN reachable here; map it to the lower
		// bound instead of panicking.
		u = 0
	}
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	switch p.Kind {
	case Real:
		if p.LogScale {
			return p.Lo * math.Exp(u*math.Log(p.Hi/p.Lo))
		}
		return p.Lo + u*(p.Hi-p.Lo)
	case Integer:
		lo := math.Ceil(p.Lo)
		n := float64(p.NumLevels())
		var idx float64
		if p.LogScale {
			idx = math.Floor(math.Exp(u*math.Log(n+1))) - 1
		} else {
			idx = math.Floor(u * n)
		}
		if idx > n-1 {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		return int(lo + idx)
	case Categorical:
		n := len(p.Categories)
		idx := int(math.Floor(u * float64(n)))
		if idx >= n {
			idx = n - 1
		}
		return p.Categories[idx]
	}
	panic("space: Decode on invalid parameter")
}

// Encode maps a parameter value back to a normalized coordinate (the
// center of its cell for discrete kinds, so that Decode(Encode(v)) == v).
func (p Param) Encode(v interface{}) (float64, error) {
	switch p.Kind {
	case Real:
		f, ok := toFloat(v)
		if !ok {
			return 0, fmt.Errorf("space: parameter %q: expected number, got %T", p.Name, v)
		}
		if p.LogScale {
			if f <= 0 {
				return 0, fmt.Errorf("space: parameter %q: non-positive value %v on log scale", p.Name, f)
			}
			return clamp01(math.Log(f/p.Lo) / math.Log(p.Hi/p.Lo)), nil
		}
		return clamp01((f - p.Lo) / (p.Hi - p.Lo)), nil
	case Integer:
		f, ok := toFloat(v)
		if !ok {
			return 0, fmt.Errorf("space: parameter %q: expected integer, got %T", p.Name, v)
		}
		lo := math.Ceil(p.Lo)
		n := float64(p.NumLevels())
		idx := math.Round(f) - lo
		if idx < 0 || idx >= n {
			return 0, fmt.Errorf("space: parameter %q: value %v outside [%v,%v)", p.Name, f, p.Lo, p.Hi)
		}
		if p.LogScale {
			// Inverse of the log-index mapping, at the cell center.
			return clamp01(math.Log(idx+1.5) / math.Log(n+1)), nil
		}
		return (idx + 0.5) / n, nil
	case Categorical:
		s, ok := v.(string)
		if !ok {
			return 0, fmt.Errorf("space: parameter %q: expected string, got %T", p.Name, v)
		}
		for i, c := range p.Categories {
			if c == s {
				return (float64(i) + 0.5) / float64(len(p.Categories)), nil
			}
		}
		return 0, fmt.Errorf("space: parameter %q: unknown category %q", p.Name, s)
	}
	return 0, fmt.Errorf("space: Encode on invalid parameter kind")
}

func toFloat(v interface{}) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Space is an ordered list of parameters.
type Space struct {
	Params []Param
}

// New constructs a Space and validates every parameter.
func New(params ...Param) (*Space, error) {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("space: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return &Space{Params: params}, nil
}

// MustNew is New that panics on error, for statically-known spaces.
func MustNew(params ...Param) *Space {
	s, err := New(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.Params) }

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	out := make([]string, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Name
	}
	return out
}

// Kinds returns the parameter kinds in order.
func (s *Space) Kinds() []Kind {
	out := make([]Kind, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Kind
	}
	return out
}

// Index returns the position of the named parameter, or -1.
func (s *Space) Index(name string) int {
	for i, p := range s.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Decode maps a normalized point to a name→value configuration.
func (s *Space) Decode(u []float64) map[string]interface{} {
	if len(u) != len(s.Params) {
		panic(fmt.Sprintf("space: Decode dimension mismatch %d vs %d", len(u), len(s.Params)))
	}
	out := make(map[string]interface{}, len(u))
	for i, p := range s.Params {
		out[p.Name] = p.Decode(u[i])
	}
	return out
}

// Encode maps a configuration back to a normalized point. Missing or
// invalid values produce an error.
func (s *Space) Encode(cfg map[string]interface{}) ([]float64, error) {
	u := make([]float64, len(s.Params))
	for i, p := range s.Params {
		v, ok := cfg[p.Name]
		if !ok {
			return nil, fmt.Errorf("space: missing value for parameter %q", p.Name)
		}
		e, err := p.Encode(v)
		if err != nil {
			return nil, err
		}
		u[i] = e
	}
	return u, nil
}

// Canonicalize snaps a normalized point to the cell centers of its
// discrete parameters so that two points decoding to the same
// configuration are numerically identical. Real coordinates pass
// through (clamped to [0,1]).
func (s *Space) Canonicalize(u []float64) []float64 {
	out := make([]float64, len(u))
	s.CanonicalizeInto(u, out)
	return out
}

// CanonicalizeInto is Canonicalize writing into a caller-owned slice of
// length Dim — the allocation-free form used by hot scoring loops.
// u and dst may be the same slice.
func (s *Space) CanonicalizeInto(u, dst []float64) {
	if len(u) != len(s.Params) || len(dst) != len(s.Params) {
		panic(fmt.Sprintf("space: CanonicalizeInto dimension mismatch %d/%d vs %d", len(u), len(dst), len(s.Params)))
	}
	for i, p := range s.Params {
		v := clamp01(u[i])
		switch p.Kind {
		case Real:
			dst[i] = v
		default:
			enc, err := p.Encode(p.Decode(v))
			if err != nil {
				// Decode always yields a valid value, so Encode cannot fail.
				panic(err)
			}
			dst[i] = enc
		}
	}
}

// Subspace returns a new space containing only the named parameters
// (the reduced search spaces of Sections VI-D and VI-E).
func (s *Space) Subspace(names ...string) (*Space, error) {
	params := make([]Param, 0, len(names))
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("space: unknown parameter %q", n)
		}
		params = append(params, s.Params[i])
	}
	return New(params...)
}
