package space

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := New(
		Param{Name: "mb", Kind: Integer, Lo: 1, Hi: 16},
		Param{Name: "x", Kind: Real, Lo: 0, Hi: 10},
		Param{Name: "colperm", Kind: Categorical, Categories: []string{"NATURAL", "MMD_AT_PLUS_A", "METIS"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDecodeRanges(t *testing.T) {
	s := testSpace(t)
	// Integer [1,16) has 15 levels: u=0 → 1, u→1 → 15.
	if v := s.Params[0].Decode(0).(int); v != 1 {
		t.Fatalf("int decode(0) = %v", v)
	}
	if v := s.Params[0].Decode(0.9999).(int); v != 15 {
		t.Fatalf("int decode(~1) = %v", v)
	}
	if v := s.Params[0].Decode(1).(int); v != 15 {
		t.Fatalf("int decode(1) = %v", v)
	}
	if v := s.Params[1].Decode(0.5).(float64); v != 5 {
		t.Fatalf("real decode(0.5) = %v", v)
	}
	if v := s.Params[2].Decode(0.99).(string); v != "METIS" {
		t.Fatalf("cat decode = %v", v)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	s := testSpace(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		cfg := s.Decode(u)
		u2, err := s.Encode(cfg)
		if err != nil {
			return false
		}
		cfg2 := s.Decode(u2)
		for k, v := range cfg {
			if cfg2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		u := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		c1 := s.Canonicalize(u)
		c2 := s.Canonicalize(c1)
		for d := range c1 {
			if c1[d] != c2[d] {
				t.Fatalf("Canonicalize not idempotent at dim %d", d)
			}
		}
		// Same decoded config.
		a, b := s.Decode(u), s.Decode(c1)
		for k := range a {
			if k != "x" && a[k] != b[k] {
				t.Fatalf("Canonicalize changed %s: %v -> %v", k, a[k], b[k])
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	s := testSpace(t)
	if _, err := s.Encode(map[string]interface{}{"mb": 3, "x": 1.0}); err == nil {
		t.Fatal("expected missing-parameter error")
	}
	if _, err := s.Encode(map[string]interface{}{"mb": 99, "x": 1.0, "colperm": "METIS"}); err == nil {
		t.Fatal("expected out-of-range integer error")
	}
	if _, err := s.Encode(map[string]interface{}{"mb": 3, "x": 1.0, "colperm": "NOPE"}); err == nil {
		t.Fatal("expected unknown-category error")
	}
	if _, err := s.Encode(map[string]interface{}{"mb": "three", "x": 1.0, "colperm": "METIS"}); err == nil {
		t.Fatal("expected type error")
	}
}

func TestValidation(t *testing.T) {
	bad := []Param{
		{Name: "", Kind: Real, Lo: 0, Hi: 1},
		{Name: "r", Kind: Real, Lo: 1, Hi: 1},
		{Name: "i", Kind: Integer, Lo: 5, Hi: 5.5},
		{Name: "c", Kind: Categorical},
		{Name: "c2", Kind: Categorical, Categories: []string{"a", "a"}},
		{Name: "lg", Kind: Real, Lo: 0, Hi: 1, LogScale: true},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("expected validation failure for %+v", p)
		}
	}
	if _, err := New(Param{Name: "a", Kind: Real, Lo: 0, Hi: 1}, Param{Name: "a", Kind: Real, Lo: 0, Hi: 1}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestLogScaleReal(t *testing.T) {
	p := Param{Name: "lr", Kind: Real, Lo: 1e-4, Hi: 1, LogScale: true}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := p.Decode(0).(float64); v != 1e-4 {
		t.Fatalf("decode(0) = %v", v)
	}
	if v := p.Decode(1).(float64); v < 0.999 || v > 1.001 {
		t.Fatalf("decode(1) = %v", v)
	}
	mid := p.Decode(0.5).(float64)
	if mid < 0.009 || mid > 0.011 { // geometric midpoint of 1e-4..1 is 1e-2
		t.Fatalf("decode(0.5) = %v", mid)
	}
	u, err := p.Encode(mid)
	if err != nil {
		t.Fatal(err)
	}
	if d := u - 0.5; d > 1e-9 || d < -1e-9 {
		t.Fatalf("encode(decode(0.5)) = %v", u)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := testSpace(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Space
	if err := json.Unmarshal(data, &s2); err != nil {
		t.Fatal(err)
	}
	if s2.Dim() != s.Dim() {
		t.Fatalf("dim mismatch after round trip")
	}
	for i := range s.Params {
		a, b := s.Params[i], s2.Params[i]
		if a.Name != b.Name || a.Kind != b.Kind || a.Lo != b.Lo || a.Hi != b.Hi {
			t.Fatalf("param %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestJSONMetaExample(t *testing.T) {
	// The exact wire shape from the paper's meta-description snippet.
	raw := `[{"name":"t","type":"integer","lower_bound":1,"upper_bound":10},
	         {"name":"x","type":"real","lower_bound":0,"upper_bound":10}]`
	var s Space
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 || s.Params[0].Kind != Integer || s.Params[1].Kind != Real {
		t.Fatalf("parsed %+v", s.Params)
	}
	var bad Space
	if err := json.Unmarshal([]byte(`[{"name":"x","type":"real"}]`), &bad); err == nil {
		t.Fatal("expected missing-bounds error")
	}
	if err := json.Unmarshal([]byte(`[{"name":"x","type":"weird","lower_bound":0,"upper_bound":1}]`), &bad); err == nil {
		t.Fatal("expected unknown-type error")
	}
}

func TestOutputSpaceJSON(t *testing.T) {
	raw := `[{"name":"y","type":"real"}]`
	var o OutputSpace
	if err := json.Unmarshal([]byte(raw), &o); err != nil {
		t.Fatal(err)
	}
	if len(o.Outputs) != 1 || o.Outputs[0].Name != "y" {
		t.Fatalf("parsed %+v", o)
	}
	if err := json.Unmarshal([]byte(`[{"type":"real"}]`), &o); err == nil {
		t.Fatal("expected empty-name error")
	}
}

func TestSubspace(t *testing.T) {
	s := testSpace(t)
	sub, err := s.Subspace("colperm", "mb")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim() != 2 || sub.Params[0].Name != "colperm" || sub.Params[1].Name != "mb" {
		t.Fatalf("subspace %+v", sub.Names())
	}
	if _, err := s.Subspace("nope"); err == nil {
		t.Fatal("expected unknown-parameter error")
	}
}

func TestIndexAndNames(t *testing.T) {
	s := testSpace(t)
	if s.Index("x") != 1 || s.Index("zzz") != -1 {
		t.Fatal("Index wrong")
	}
	names := s.Names()
	if names[0] != "mb" || names[2] != "colperm" {
		t.Fatalf("Names = %v", names)
	}
	kinds := s.Kinds()
	if kinds[2] != Categorical {
		t.Fatal("Kinds wrong")
	}
}

func TestIntegerLogScale(t *testing.T) {
	p := Param{Name: "n", Kind: Integer, Lo: 1, Hi: 1025, LogScale: true}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := p.Decode(0).(int); v != 1 {
		t.Fatalf("decode(0) = %v", v)
	}
	if v := p.Decode(1).(int); v != 1024 {
		t.Fatalf("decode(1) = %v", v)
	}
	// Round trip at a few values.
	for _, val := range []int{1, 2, 10, 100, 1024} {
		u, err := p.Encode(val)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Decode(u).(int); got != val {
			t.Fatalf("round trip %d -> %v -> %d", val, u, got)
		}
	}
}

func TestOutputSpaceMarshal(t *testing.T) {
	o := OutputSpace{Outputs: []OutputParam{{Name: "y", Type: "real"}}}
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `[{"name":"y","type":"real"}]` {
		t.Fatalf("marshal = %s", data)
	}
}

func TestMustNewPanicsOnBadSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid parameter")
		}
	}()
	MustNew(Param{Name: "", Kind: Real, Lo: 0, Hi: 1})
}

func TestEncodeNumericTypes(t *testing.T) {
	p := Param{Name: "n", Kind: Integer, Lo: 0, Hi: 10}
	for _, v := range []interface{}{3, int32(3), int64(3), 3.0, float32(3), json.Number("3")} {
		u, err := p.Encode(v)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		if got := p.Decode(u).(int); got != 3 {
			t.Fatalf("%T round trip = %d", v, got)
		}
	}
	if _, err := p.Encode(json.Number("x")); err == nil {
		t.Fatal("bad json.Number should fail")
	}
}

func TestDecodeClampsOutOfRange(t *testing.T) {
	p := Param{Name: "r", Kind: Real, Lo: 0, Hi: 2}
	if v := p.Decode(-0.5).(float64); v != 0 {
		t.Fatalf("decode(-0.5) = %v", v)
	}
	if v := p.Decode(1.5).(float64); v != 2 {
		t.Fatalf("decode(1.5) = %v", v)
	}
}
