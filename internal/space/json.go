package space

import (
	"encoding/json"
	"fmt"
)

// paramJSON is the meta-description wire form of a parameter, matching
// the paper's example:
//
//	{"name":"t", "type":"integer", "lower_bound":1, "upper_bound":10}
//	{"name":"x", "type":"real", "lower_bound":0, "upper_bound":10}
//	{"name":"c", "type":"categorical", "categories":["a","b"]}
type paramJSON struct {
	Name       string   `json:"name"`
	Type       string   `json:"type"`
	LowerBound *float64 `json:"lower_bound,omitempty"`
	UpperBound *float64 `json:"upper_bound,omitempty"`
	Categories []string `json:"categories,omitempty"`
	LogScale   bool     `json:"log_scale,omitempty"`
}

// MarshalJSON renders the space as a meta-description parameter list.
func (s *Space) MarshalJSON() ([]byte, error) {
	out := make([]paramJSON, len(s.Params))
	for i, p := range s.Params {
		pj := paramJSON{Name: p.Name, Type: p.Kind.String(), LogScale: p.LogScale}
		switch p.Kind {
		case Real, Integer:
			lo, hi := p.Lo, p.Hi
			pj.LowerBound = &lo
			pj.UpperBound = &hi
		case Categorical:
			pj.Categories = p.Categories
		}
		out[i] = pj
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses a meta-description parameter list.
func (s *Space) UnmarshalJSON(data []byte) error {
	var raw []paramJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("space: invalid parameter list: %w", err)
	}
	params := make([]Param, len(raw))
	for i, pj := range raw {
		kind, err := ParseKind(pj.Type)
		if err != nil {
			return err
		}
		p := Param{Name: pj.Name, Kind: kind, Categories: pj.Categories, LogScale: pj.LogScale}
		if kind != Categorical {
			if pj.LowerBound == nil || pj.UpperBound == nil {
				return fmt.Errorf("space: parameter %q: missing bounds", pj.Name)
			}
			p.Lo, p.Hi = *pj.LowerBound, *pj.UpperBound
		}
		if err := p.Validate(); err != nil {
			return err
		}
		params[i] = p
	}
	ns, err := New(params...)
	if err != nil {
		return err
	}
	*s = *ns
	return nil
}

// OutputParam describes one objective of the output space. Outputs need
// no bounds; they carry only a name (e.g. runtime "y").
type OutputParam struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// OutputSpace is the list of objectives. GPTuneCrowd tunes a single
// objective in all the paper's experiments, but the representation keeps
// the general list form of the meta description.
type OutputSpace struct {
	Outputs []OutputParam
}

// MarshalJSON renders the output space list.
func (o OutputSpace) MarshalJSON() ([]byte, error) { return json.Marshal(o.Outputs) }

// UnmarshalJSON parses the output space list.
func (o *OutputSpace) UnmarshalJSON(data []byte) error {
	o.Outputs = nil // do not let stale elements leak through partial decodes
	if err := json.Unmarshal(data, &o.Outputs); err != nil {
		return fmt.Errorf("space: invalid output space: %w", err)
	}
	for _, p := range o.Outputs {
		if p.Name == "" {
			return fmt.Errorf("space: output with empty name")
		}
	}
	return nil
}
