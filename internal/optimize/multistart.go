package optimize

import "gptunecrowd/internal/parallel"

// MultiStartParallel runs the local minimizer from each start point
// using the given worker count (<= 0 means the package default) and
// returns the best result. minimize receives the restart index so
// callers can hand each concurrent run its own scratch state (objective
// buffers, RNG streams).
//
// Determinism: each run depends only on its start point, and the winner
// is chosen by a strictly-ordered argmin over restart indices (first
// index wins ties), matching serial MultiStart exactly — so the outcome
// is bit-identical for every worker count.
func MultiStartParallel(starts [][]float64, workers int, minimize func(run int, x0 []float64) Result) Result {
	if len(starts) == 0 {
		panic("optimize: MultiStartParallel requires at least one start")
	}
	results := make([]Result, len(starts))
	parallel.For(len(starts), workers, func(i int) {
		results[i] = minimize(i, starts[i])
	})
	best := results[0]
	for _, r := range results[1:] {
		best.Evals += r.Evals
		if r.F < best.F {
			best.X, best.F = r.X, r.F
		}
	}
	return best
}
