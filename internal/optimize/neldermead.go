// Package optimize provides the derivative-free and gradient-based
// optimizers that drive surrogate-model hyperparameter fitting and
// acquisition-function maximization: Nelder–Mead, L-BFGS with
// backtracking line search, differential evolution, and a multi-start
// driver. All routines minimize.
package optimize

import (
	"math"
	"sort"
)

// Result reports the outcome of a minimization.
type Result struct {
	X     []float64 // best point found
	F     float64   // objective value at X
	Evals int       // number of objective evaluations
}

// NelderMeadConfig controls the simplex search.
type NelderMeadConfig struct {
	MaxIter int     // maximum iterations (default 200·dim)
	TolF    float64 // simplex function-spread stopping tolerance (default 1e-10)
	TolX    float64 // simplex size stopping tolerance (default 1e-10)
	Step    float64 // initial simplex edge length (default 0.1)
}

func (c *NelderMeadConfig) defaults(dim int) {
	if c.MaxIter == 0 {
		c.MaxIter = 200 * dim
	}
	if c.TolF == 0 {
		c.TolF = 1e-10
	}
	if c.TolX == 0 {
		c.TolX = 1e-10
	}
	if c.Step == 0 {
		c.Step = 0.1
	}
}

// NelderMead minimizes f starting from x0 using the adaptive
// Nelder–Mead simplex method (Gao & Han coefficients for dimension
// dependence).
func NelderMead(f func([]float64) float64, x0 []float64, cfg NelderMeadConfig) Result {
	dim := len(x0)
	cfg.defaults(dim)
	n := float64(dim)
	// Adaptive coefficients (Gao & Han 2012).
	alpha := 1.0
	beta := 1 + 2/n
	gamma := 0.75 - 1/(2*n)
	delta := 1 - 1/n
	if dim == 1 {
		beta, gamma, delta = 2, 0.5, 0.5
	}

	type vert struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	simplex := make([]vert, dim+1)
	simplex[0] = vert{x: append([]float64(nil), x0...)}
	simplex[0].f = eval(simplex[0].x)
	for i := 0; i < dim; i++ {
		x := append([]float64(nil), x0...)
		h := cfg.Step
		if x[i] != 0 {
			h = cfg.Step * math.Abs(x[i])
		}
		x[i] += h
		simplex[i+1] = vert{x: x, f: eval(x)}
	}

	centroid := make([]float64, dim)
	xr := make([]float64, dim)
	xe := make([]float64, dim)
	xc := make([]float64, dim)

	for iter := 0; iter < cfg.MaxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		// Convergence: function spread and simplex extent.
		fSpread := math.Abs(simplex[dim].f - simplex[0].f)
		var xSpread float64
		for i := 0; i < dim; i++ {
			d := math.Abs(simplex[dim].x[i] - simplex[0].x[i])
			if d > xSpread {
				xSpread = d
			}
		}
		if fSpread < cfg.TolF && xSpread < cfg.TolX {
			break
		}
		// Centroid of all but the worst.
		for i := range centroid {
			centroid[i] = 0
		}
		for v := 0; v < dim; v++ {
			for i, xv := range simplex[v].x {
				centroid[i] += xv
			}
		}
		for i := range centroid {
			centroid[i] /= n
		}
		worst := &simplex[dim]
		// Reflection.
		for i := range xr {
			xr[i] = centroid[i] + alpha*(centroid[i]-worst.x[i])
		}
		fr := eval(xr)
		switch {
		case fr < simplex[0].f:
			// Expansion.
			for i := range xe {
				xe[i] = centroid[i] + beta*(xr[i]-centroid[i])
			}
			fe := eval(xe)
			if fe < fr {
				copy(worst.x, xe)
				worst.f = fe
			} else {
				copy(worst.x, xr)
				worst.f = fr
			}
		case fr < simplex[dim-1].f:
			copy(worst.x, xr)
			worst.f = fr
		default:
			// Contraction (outside if fr better than worst, else inside).
			if fr < worst.f {
				for i := range xc {
					xc[i] = centroid[i] + gamma*(xr[i]-centroid[i])
				}
			} else {
				for i := range xc {
					xc[i] = centroid[i] - gamma*(centroid[i]-worst.x[i])
				}
			}
			fc := eval(xc)
			if fc < math.Min(fr, worst.f) {
				copy(worst.x, xc)
				worst.f = fc
			} else {
				// Shrink toward the best vertex.
				for v := 1; v <= dim; v++ {
					for i := range simplex[v].x {
						simplex[v].x[i] = simplex[0].x[i] + delta*(simplex[v].x[i]-simplex[0].x[i])
					}
					simplex[v].f = eval(simplex[v].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return Result{X: simplex[0].x, F: simplex[0].f, Evals: evals}
}
