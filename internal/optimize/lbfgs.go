package optimize

import "math"

// LBFGSConfig controls the limited-memory BFGS minimizer.
type LBFGSConfig struct {
	MaxIter  int     // maximum iterations (default 150)
	Memory   int     // number of correction pairs (default 8)
	TolGrad  float64 // gradient-infinity-norm stopping tolerance (default 1e-6)
	TolF     float64 // relative function-decrease tolerance (default 1e-12)
	InitStep float64 // first line-search step (default 1)
}

func (c *LBFGSConfig) defaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 150
	}
	if c.Memory == 0 {
		c.Memory = 8
	}
	if c.TolGrad == 0 {
		c.TolGrad = 1e-6
	}
	if c.TolF == 0 {
		c.TolF = 1e-12
	}
	if c.InitStep == 0 {
		c.InitStep = 1
	}
}

// LBFGS minimizes f (which returns value and gradient) starting from x0
// using two-loop-recursion L-BFGS with an Armijo backtracking line
// search. It is robust to f returning +Inf (the line search backtracks
// past infeasible points).
func LBFGS(f func(x []float64) (float64, []float64), x0 []float64, cfg LBFGSConfig) Result {
	cfg.defaults()
	dim := len(x0)
	x := append([]float64(nil), x0...)
	evals := 0
	fx, g := f(x)
	evals++
	if math.IsNaN(fx) {
		fx = math.Inf(1)
	}

	sHist := make([][]float64, 0, cfg.Memory)
	yHist := make([][]float64, 0, cfg.Memory)
	rhoHist := make([]float64, 0, cfg.Memory)

	dir := make([]float64, dim)
	xNew := make([]float64, dim)
	alphaBuf := make([]float64, cfg.Memory)

	for iter := 0; iter < cfg.MaxIter; iter++ {
		if infNorm(g) < cfg.TolGrad {
			break
		}
		// Two-loop recursion: dir = -H·g.
		copy(dir, g)
		k := len(sHist)
		for i := k - 1; i >= 0; i-- {
			alphaBuf[i] = rhoHist[i] * dot(sHist[i], dir)
			axpy(-alphaBuf[i], yHist[i], dir)
		}
		if k > 0 {
			ys := dot(yHist[k-1], sHist[k-1])
			yy := dot(yHist[k-1], yHist[k-1])
			if yy > 0 {
				scale(ys/yy, dir)
			}
		}
		for i := 0; i < k; i++ {
			beta := rhoHist[i] * dot(yHist[i], dir)
			axpy(alphaBuf[i]-beta, sHist[i], dir)
		}
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Ensure a descent direction; otherwise reset to steepest descent.
		dg := dot(dir, g)
		if dg >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
			dg = dot(dir, g)
			sHist, yHist, rhoHist = sHist[:0], yHist[:0], rhoHist[:0]
		}
		// Armijo backtracking.
		step := cfg.InitStep
		if iter == 0 {
			// Conservative first step scaled by gradient magnitude.
			gn := infNorm(g)
			if gn > 1 {
				step = 1 / gn
			}
		}
		const c1 = 1e-4
		var fNew float64
		var gNew []float64
		ok := false
		for ls := 0; ls < 40; ls++ {
			for i := range xNew {
				xNew[i] = x[i] + step*dir[i]
			}
			fNew, gNew = f(xNew)
			evals++
			if !math.IsNaN(fNew) && fNew <= fx+c1*step*dg {
				ok = true
				break
			}
			step *= 0.5
		}
		if !ok {
			break // line search failed; x is our best answer
		}
		// Curvature update.
		s := make([]float64, dim)
		y := make([]float64, dim)
		for i := range s {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		sy := dot(s, y)
		if sy > 1e-12 {
			if len(sHist) == cfg.Memory {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
		}
		relDec := (fx - fNew) / math.Max(1, math.Abs(fx))
		copy(x, xNew)
		fx, g = fNew, gNew
		if relDec >= 0 && relDec < cfg.TolF {
			break
		}
	}
	return Result{X: x, F: fx, Evals: evals}
}

// NumericGradient wraps a scalar objective with central finite
// differences so that it can be fed to LBFGS when analytic gradients are
// unavailable.
func NumericGradient(f func([]float64) float64, h float64) func([]float64) (float64, []float64) {
	if h == 0 {
		h = 1e-6
	}
	return func(x []float64) (float64, []float64) {
		fx := f(x)
		g := make([]float64, len(x))
		xp := append([]float64(nil), x...)
		for i := range x {
			step := h * math.Max(1, math.Abs(x[i]))
			xp[i] = x[i] + step
			fp := f(xp)
			xp[i] = x[i] - step
			fm := f(xp)
			xp[i] = x[i]
			g[i] = (fp - fm) / (2 * step)
		}
		return fx, g
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

func scale(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

func infNorm(x []float64) float64 {
	var m float64
	for _, v := range x {
		a := math.Abs(v)
		if a > m {
			m = a
		}
	}
	return m
}
