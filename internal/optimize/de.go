package optimize

import (
	"math"
	"math/rand"

	"gptunecrowd/internal/parallel"
)

// DEConfig controls the differential-evolution global optimizer used for
// acquisition-function maximization over normalized box domains.
type DEConfig struct {
	Pop     int     // population size (default max(15, 5·dim))
	MaxGen  int     // generations (default 60)
	F       float64 // differential weight (default 0.7)
	CR      float64 // crossover probability (default 0.9)
	Lower   []float64
	Upper   []float64
	Seeds   [][]float64 // optional points injected into the initial population
	RandSrc *rand.Rand  // required
	// Workers bounds the parallelism of the initial-population scoring
	// (<= 0 means the engine default). f must then be safe for concurrent
	// calls. Generations stay sequential — selection feedback within a
	// generation is part of the DE/rand/1/bin semantics — so the search
	// trajectory is identical for every worker count.
	Workers int
}

// DifferentialEvolution minimizes f over the box [Lower, Upper] using
// DE/rand/1/bin with clamped bounds.
func DifferentialEvolution(f func([]float64) float64, cfg DEConfig) Result {
	dim := len(cfg.Lower)
	if dim == 0 || len(cfg.Upper) != dim {
		panic("optimize: DE requires matching Lower/Upper bounds")
	}
	if cfg.RandSrc == nil {
		panic("optimize: DE requires RandSrc")
	}
	if cfg.Pop == 0 {
		cfg.Pop = 5 * dim
		if cfg.Pop < 15 {
			cfg.Pop = 15
		}
	}
	if cfg.MaxGen == 0 {
		cfg.MaxGen = 60
	}
	if cfg.F == 0 {
		cfg.F = 0.7
	}
	if cfg.CR == 0 {
		cfg.CR = 0.9
	}
	rng := cfg.RandSrc
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// The initial population is drawn sequentially (fixed RNG stream),
	// then scored in parallel into per-slot fitness values: evaluations
	// consume no randomness, so this is bit-identical to serial scoring.
	pop := make([][]float64, cfg.Pop)
	fit := make([]float64, cfg.Pop)
	for i := range pop {
		x := make([]float64, dim)
		if i < len(cfg.Seeds) {
			copy(x, cfg.Seeds[i])
			clampBox(x, cfg.Lower, cfg.Upper)
		} else {
			for d := 0; d < dim; d++ {
				x[d] = cfg.Lower[d] + rng.Float64()*(cfg.Upper[d]-cfg.Lower[d])
			}
		}
		pop[i] = x
	}
	parallel.For(cfg.Pop, cfg.Workers, func(i int) {
		v := f(pop[i])
		if math.IsNaN(v) {
			v = math.Inf(1)
		}
		fit[i] = v
	})
	evals += cfg.Pop

	trial := make([]float64, dim)
	for gen := 0; gen < cfg.MaxGen; gen++ {
		for i := range pop {
			a, b, c := distinct3(rng, cfg.Pop, i)
			jrand := rng.Intn(dim)
			for d := 0; d < dim; d++ {
				if d == jrand || rng.Float64() < cfg.CR {
					trial[d] = pop[a][d] + cfg.F*(pop[b][d]-pop[c][d])
				} else {
					trial[d] = pop[i][d]
				}
			}
			clampBox(trial, cfg.Lower, cfg.Upper)
			ft := eval(trial)
			if ft <= fit[i] {
				copy(pop[i], trial)
				fit[i] = ft
			}
		}
	}
	best := 0
	for i, v := range fit {
		if v < fit[best] {
			best = i
		}
	}
	return Result{X: append([]float64(nil), pop[best]...), F: fit[best], Evals: evals}
}

func clampBox(x, lo, hi []float64) {
	for d := range x {
		if x[d] < lo[d] {
			x[d] = lo[d]
		}
		if x[d] > hi[d] {
			x[d] = hi[d]
		}
	}
}

func distinct3(rng *rand.Rand, n, exclude int) (int, int, int) {
	pick := func(used ...int) int {
		for {
			v := rng.Intn(n)
			ok := v != exclude
			for _, u := range used {
				if v == u {
					ok = false
				}
			}
			if ok || n <= len(used)+1 {
				return v
			}
		}
	}
	a := pick()
	b := pick(a)
	c := pick(a, b)
	return a, b, c
}

// MultiStart runs the given local minimizer from each start point and
// returns the best result.
func MultiStart(starts [][]float64, minimize func(x0 []float64) Result) Result {
	if len(starts) == 0 {
		panic("optimize: MultiStart requires at least one start")
	}
	best := minimize(starts[0])
	for _, s := range starts[1:] {
		r := minimize(s)
		best.Evals += r.Evals
		if r.F < best.F {
			best.X, best.F = r.X, r.F
		}
	}
	return best
}
