package optimize

import (
	"math"
	"math/rand"
	"testing"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

func rosenbrockGrad(x []float64) (float64, []float64) {
	g := make([]float64, len(x))
	var s float64
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
		g[i] += -400*x[i]*a - 2*b
		g[i+1] += 200 * a
	}
	return s, g
}

func TestNelderMeadSphere(t *testing.T) {
	r := NelderMead(sphere, []float64{3, -2, 1}, NelderMeadConfig{})
	if r.F > 1e-8 {
		t.Fatalf("NelderMead sphere f = %v at %v", r.F, r.X)
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	r := NelderMead(rosenbrock, []float64{-1.2, 1}, NelderMeadConfig{MaxIter: 2000})
	if math.Abs(r.X[0]-1) > 1e-3 || math.Abs(r.X[1]-1) > 1e-3 {
		t.Fatalf("NelderMead rosenbrock x = %v (f=%v)", r.X, r.F)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] - 2.5) * (x[0] - 2.5) }
	r := NelderMead(f, []float64{0}, NelderMeadConfig{})
	if math.Abs(r.X[0]-2.5) > 1e-4 {
		t.Fatalf("1-D minimum at %v", r.X)
	}
}

func TestNelderMeadHandlesInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.Inf(1)
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	r := NelderMead(f, []float64{3}, NelderMeadConfig{})
	if math.Abs(r.X[0]-1) > 1e-3 {
		t.Fatalf("constrained minimum at %v", r.X)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	r := LBFGS(rosenbrockGrad, []float64{-1.2, 1}, LBFGSConfig{MaxIter: 500})
	if math.Abs(r.X[0]-1) > 1e-4 || math.Abs(r.X[1]-1) > 1e-4 {
		t.Fatalf("LBFGS rosenbrock x = %v (f=%v)", r.X, r.F)
	}
}

func TestLBFGSQuadraticFast(t *testing.T) {
	f := func(x []float64) (float64, []float64) {
		g := make([]float64, len(x))
		var s float64
		for i, v := range x {
			s += float64(i+1) * v * v
			g[i] = 2 * float64(i+1) * v
		}
		return s, g
	}
	r := LBFGS(f, []float64{5, -3, 2, 1}, LBFGSConfig{})
	if r.F > 1e-10 {
		t.Fatalf("quadratic not solved: f=%v", r.F)
	}
}

func TestLBFGSNumericGradient(t *testing.T) {
	fg := NumericGradient(rosenbrock, 0)
	r := LBFGS(fg, []float64{-1.2, 1}, LBFGSConfig{MaxIter: 800})
	if math.Abs(r.X[0]-1) > 1e-2 || math.Abs(r.X[1]-1) > 1e-2 {
		t.Fatalf("numeric-gradient LBFGS x = %v", r.X)
	}
}

func TestNumericGradientAccuracy(t *testing.T) {
	fg := NumericGradient(sphere, 0)
	x := []float64{1, -2, 0.5}
	_, g := fg(x)
	for i, v := range x {
		if math.Abs(g[i]-2*v) > 1e-5 {
			t.Fatalf("grad[%d] = %v, want %v", i, g[i], 2*v)
		}
	}
}

func TestLBFGSInfeasibleStart(t *testing.T) {
	// Objective infinite on half the domain; line search must recover.
	f := func(x []float64) (float64, []float64) {
		if x[0] > 4 {
			return math.Inf(1), []float64{0}
		}
		return (x[0] - 2) * (x[0] - 2), []float64{2 * (x[0] - 2)}
	}
	r := LBFGS(f, []float64{3.9}, LBFGSConfig{})
	if math.Abs(r.X[0]-2) > 1e-4 {
		t.Fatalf("x = %v", r.X)
	}
}

func TestDifferentialEvolutionMultimodal(t *testing.T) {
	// Rastrigin in 2-D over [-5.12, 5.12]: DE should find the global bowl.
	rastrigin := func(x []float64) float64 {
		s := 10.0 * float64(len(x))
		for _, v := range x {
			s += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return s
	}
	r := DifferentialEvolution(rastrigin, DEConfig{
		Lower:   []float64{-5.12, -5.12},
		Upper:   []float64{5.12, 5.12},
		MaxGen:  120,
		RandSrc: rand.New(rand.NewSource(1)),
	})
	if r.F > 1e-3 {
		t.Fatalf("DE rastrigin f = %v at %v", r.F, r.X)
	}
}

func TestDESeedsRespected(t *testing.T) {
	// With the optimum injected as a seed, DE must never lose it
	// (selection is elitist per slot).
	f := func(x []float64) float64 { return sphere(x) }
	r := DifferentialEvolution(f, DEConfig{
		Lower:   []float64{-1, -1},
		Upper:   []float64{1, 1},
		MaxGen:  5,
		Seeds:   [][]float64{{0, 0}},
		RandSrc: rand.New(rand.NewSource(2)),
	})
	if r.F > 1e-12 {
		t.Fatalf("seeded optimum lost: f=%v", r.F)
	}
}

func TestDEClampsToBounds(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] } // pushes to upper bound
	r := DifferentialEvolution(f, DEConfig{
		Lower:   []float64{0},
		Upper:   []float64{2},
		MaxGen:  40,
		RandSrc: rand.New(rand.NewSource(3)),
	})
	if r.X[0] < 0 || r.X[0] > 2 {
		t.Fatalf("out of bounds: %v", r.X)
	}
	if math.Abs(r.X[0]-2) > 1e-9 {
		t.Fatalf("bound optimum missed: %v", r.X)
	}
}

func TestMultiStart(t *testing.T) {
	// Two basins: multi-start from both sides must find the deeper one.
	f := func(x []float64) float64 {
		a := x[0] + 2
		b := x[0] - 3
		return math.Min(a*a+1, b*b) // global min 0 at x=3
	}
	r := MultiStart([][]float64{{-2.1}, {2.9}}, func(x0 []float64) Result {
		return NelderMead(f, x0, NelderMeadConfig{})
	})
	if math.Abs(r.X[0]-3) > 1e-3 {
		t.Fatalf("multistart found %v", r.X)
	}
}
