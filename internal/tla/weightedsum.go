package tla

import (
	"math"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/gp"
	"gptunecrowd/internal/kernel"
	"gptunecrowd/internal/linalg"
)

// WeightedSum is the HiPerBOt-style transfer proposer: a weighted
// combination of per-task GP surrogates (paper Section V-B/V-C).
//
// With Dynamic=false it reproduces WeightedSum(static) when
// StaticWeights is set — weights ordered [src_1 … src_n, target] — and
// WeightedSum(equal) otherwise. With Dynamic=true the weights are
// re-estimated before every proposal by the linear-regression scheme of
// Section V-C (GPTuneCrowd's improvement).
type WeightedSum struct {
	Sources       []*Source
	Dynamic       bool
	StaticWeights []float64 // optional; length len(Sources)+1
	Kernel        kernel.Type
	Acquisition   core.Acquisition
	// Ridge is the regularization of the dynamic weight solve
	// (default 1e-6).
	Ridge float64
}

// NewWeightedSumEqual returns the WeightedSum(equal) proposer.
func NewWeightedSumEqual(sources []*Source) *WeightedSum {
	return &WeightedSum{Sources: sources}
}

// NewWeightedSumDynamic returns the WeightedSum(dynamic) proposer.
func NewWeightedSumDynamic(sources []*Source) *WeightedSum {
	return &WeightedSum{Sources: sources, Dynamic: true}
}

// Name implements core.Proposer.
func (w *WeightedSum) Name() string {
	if w.Dynamic {
		return "WeightedSum(dynamic)"
	}
	if w.StaticWeights != nil {
		return "WeightedSum(static)"
	}
	return "WeightedSum(equal)"
}

// Propose implements core.Proposer.
func (w *WeightedSum) Propose(ctx *core.ProposeContext) ([]float64, error) {
	if len(w.Sources) == 0 {
		return nil, ErrNoSources
	}
	X, Y := ctx.History.XY()
	if len(X) == 0 {
		return equalWeightFirstEval(ctx, w.Sources, w.Kernel)
	}
	mask := ctx.Problem.CategoricalMask()
	srcModels, err := sourceModels(w.Sources, mask, w.Kernel, 1)
	if err != nil {
		return nil, err
	}
	// Target surrogate (needs >=2 samples to be meaningful).
	var tgtModel *gp.GP
	if len(X) >= 2 {
		tgtModel, err = gp.Fit(X, Y, gp.Options{Kernel: w.Kernel, Categorical: mask, Seed: ctx.Rng.Int63()})
		if err != nil {
			tgtModel = nil // degrade gracefully to a source-only mix
		}
	}
	models := make([]core.Predictor, 0, len(srcModels)+1)
	for _, m := range srcModels {
		models = append(models, m)
	}
	meanModels := make([]*gp.GP, len(srcModels))
	copy(meanModels, srcModels)
	if tgtModel != nil {
		models = append(models, tgtModel)
		meanModels = append(meanModels, tgtModel)
	}
	weights := w.weightsFor(meanModels, tgtModel != nil, X, Y)
	comb := &weightedSurrogate{models: models, weights: weights}
	acq := w.Acquisition
	if acq == nil {
		acq = core.EI{}
	}
	return core.SearchNext(comb, ctx.Problem.ParamSpace, acq, ctx.History, ctx.Rng, ctx.Search), nil
}

// weightsFor produces normalized weights aligned with models
// ([sources..., target?]).
func (w *WeightedSum) weightsFor(models []*gp.GP, hasTarget bool, X [][]float64, Y []float64) []float64 {
	n := len(models)
	equal := make([]float64, n)
	for i := range equal {
		equal[i] = 1.0 / float64(n)
	}
	if !w.Dynamic {
		if w.StaticWeights != nil && len(w.StaticWeights) >= n {
			out := append([]float64(nil), w.StaticWeights[:n]...)
			normalizeWeights(out)
			return out
		}
		return equal
	}
	// Dynamic scheme (Section V-C). Needs at least two target samples to
	// form non-trivial rows.
	if len(X) < 2 {
		return equal
	}
	// Incumbent.
	bestIdx := 0
	for i, v := range Y {
		if v < Y[bestIdx] {
			bestIdx = i
		}
	}
	xStar, yStar := X[bestIdx], Y[bestIdx]
	yScale := math.Abs(yStar)
	if yScale < 1e-12 {
		yScale = 1
	}
	// Per-model normalizers μ_i(x*).
	muStar := make([]float64, n)
	for i, m := range models {
		muStar[i] = m.PredictMean(xStar)
	}
	// Design matrix: one row per observed target sample (excluding the
	// incumbent row, which is identically zero).
	rows := make([][]float64, 0, len(X)-1)
	rhs := make([]float64, 0, len(X)-1)
	for j := range X {
		if j == bestIdx {
			continue
		}
		row := make([]float64, n)
		for i, m := range models {
			scale := math.Abs(muStar[i])
			if scale < 1e-12 {
				scale = 1
			}
			row[i] = (muStar[i] - m.PredictMean(X[j])) / scale
		}
		rows = append(rows, row)
		rhs = append(rhs, (yStar-Y[j])/yScale)
	}
	if len(rows) == 0 {
		return equal
	}
	A := linalg.NewMatrix(len(rows), n)
	for i, r := range rows {
		copy(A.Row(i), r)
	}
	ridge := w.Ridge
	if ridge == 0 {
		ridge = 1e-6
	}
	sol, err := linalg.RidgeLeastSquares(A, rhs, ridge)
	if err != nil {
		return equal
	}
	// Clip negatives and renormalize (documented deviation: keeps the
	// geometric-mean std of Eq. (2) well defined).
	for i, v := range sol {
		if v < 0 || math.IsNaN(v) {
			sol[i] = 0
		}
	}
	if !normalizeWeights(sol) {
		return equal
	}
	return sol
}

// normalizeWeights scales weights to sum to one; returns false when the
// sum is not positive.
func normalizeWeights(w []float64) bool {
	var s float64
	for _, v := range w {
		s += v
	}
	if s <= 1e-12 {
		return false
	}
	for i := range w {
		w[i] /= s
	}
	return true
}
