package tla

import (
	"math"
	"math/rand"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/gp"
	"gptunecrowd/internal/kernel"
	"gptunecrowd/internal/lcm"
	"gptunecrowd/internal/sample"
)

// lcmFit substitutes the LCM fit in tests (fit-degradation coverage).
var lcmFit = lcm.Fit

// lcmSlice exposes one task of a fitted LCM as a core.Predictor.
type lcmSlice struct {
	m    *lcm.Model
	task int
}

// Predict implements core.Predictor. A prediction error (out-of-range
// task, bad input) answers +Inf mean so the acquisition search never
// selects the point, instead of crashing the session.
func (s lcmSlice) Predict(x []float64) (float64, float64) {
	mean, std, err := s.m.Predict(s.task, x)
	if err != nil {
		return math.Inf(1), 0
	}
	return mean, std
}

// MultitaskTS is GPTuneCrowd's improved multitask proposer
// (Section V-A-2): it feeds the true source samples into the LCM,
// exploiting unequal per-task sample counts, and asks the joint model to
// propose points only for the target task.
type MultitaskTS struct {
	Sources []*Source
	Kernel  kernel.Type
	// MaxSourceSamples caps the per-source sample count fed to the LCM
	// (cubic cost in the total count). 0 means no cap. Subsampling
	// always keeps the source optimum.
	MaxSourceSamples int
	Q                int // latent processes (default: LCM heuristic)
	LCMMaxIter       int
	Acquisition      core.Acquisition

	sub []*Source // cached subsampled views
}

// NewMultitaskTS returns the Multitask(TS) proposer with a sample cap
// suited to interactive runs.
func NewMultitaskTS(sources []*Source) *MultitaskTS {
	return &MultitaskTS{Sources: sources, MaxSourceSamples: 60}
}

// Name implements core.Proposer.
func (m *MultitaskTS) Name() string { return "Multitask(TS)" }

// Propose implements core.Proposer.
func (m *MultitaskTS) Propose(ctx *core.ProposeContext) ([]float64, error) {
	if len(m.Sources) == 0 {
		return nil, ErrNoSources
	}
	X, Y, info := ctx.History.RobustXY(core.RobustOptions{})
	ctx.NoteRobustIngestion(info)
	if len(X) == 0 {
		return equalWeightFirstEval(ctx, m.Sources, m.Kernel)
	}
	if m.sub == nil {
		m.sub = make([]*Source, len(m.Sources))
		for i, s := range m.Sources {
			m.sub[i] = s.Subsample(m.MaxSourceSamples, ctx.Rng)
		}
	}
	nTasks := len(m.sub) + 1
	tasksX := make([][][]float64, nTasks)
	tasksY := make([][]float64, nTasks)
	for i, s := range m.sub {
		tasksX[i] = s.X
		tasksY[i] = s.Y
	}
	tasksX[nTasks-1] = X
	tasksY[nTasks-1] = Y
	model, err := lcmFit(tasksX, tasksY, lcm.Options{
		Q:           m.Q,
		Kernel:      m.Kernel,
		Categorical: ctx.Problem.CategoricalMask(),
		MaxIter:     m.LCMMaxIter,
		Seed:        ctx.Rng.Int63(),
	})
	if err != nil {
		return ctx.DegradeToSpaceFill(m.Name(), err), nil
	}
	acq := m.Acquisition
	if acq == nil {
		acq = core.EI{}
	}
	surr := lcmSlice{m: model, task: nTasks - 1}
	return core.SearchNext(surr, ctx.Problem.ParamSpace, acq, ctx.History, ctx.Rng, ctx.Search), nil
}

// MultitaskPS is the 2021-GPTune multitask proposer (Section V-A-1):
// the source tasks contribute *pseudo samples* drawn from their
// pre-trained black-box surrogate models rather than raw data. Each
// iteration the LCM proposes a point for every task; source proposals
// are "evaluated" by the source surrogate mean and appended as pseudo
// samples, while the target proposal is evaluated for real.
type MultitaskPS struct {
	Sources []*Source
	Kernel  kernel.Type
	// InitPseudo is the number of pseudo samples seeded per source
	// before the first LCM fit (default max(4, dim+2)).
	InitPseudo  int
	Q           int
	LCMMaxIter  int
	Acquisition core.Acquisition

	pseudoX [][][]float64
	pseudoY [][]float64
}

// NewMultitaskPS returns the Multitask(PS) proposer.
func NewMultitaskPS(sources []*Source) *MultitaskPS {
	return &MultitaskPS{Sources: sources}
}

// Name implements core.Proposer.
func (m *MultitaskPS) Name() string { return "Multitask(PS)" }

// Propose implements core.Proposer.
func (m *MultitaskPS) Propose(ctx *core.ProposeContext) ([]float64, error) {
	if len(m.Sources) == 0 {
		return nil, ErrNoSources
	}
	X, Y, info := ctx.History.RobustXY(core.RobustOptions{})
	ctx.NoteRobustIngestion(info)
	if len(X) == 0 {
		return equalWeightFirstEval(ctx, m.Sources, m.Kernel)
	}
	mask := ctx.Problem.CategoricalMask()
	models, err := sourceModels(m.Sources, mask, m.Kernel, 1)
	if err != nil {
		return nil, err
	}
	dim := ctx.Problem.ParamSpace.Dim()
	if m.pseudoX == nil {
		m.seedPseudo(dim, models, ctx.Rng)
	}
	nTasks := len(m.Sources) + 1
	tasksX := make([][][]float64, nTasks)
	tasksY := make([][]float64, nTasks)
	for i := range m.Sources {
		tasksX[i] = m.pseudoX[i]
		tasksY[i] = m.pseudoY[i]
	}
	tasksX[nTasks-1] = X
	tasksY[nTasks-1] = Y
	model, err := lcmFit(tasksX, tasksY, lcm.Options{
		Q:           m.Q,
		Kernel:      m.Kernel,
		Categorical: mask,
		MaxIter:     m.LCMMaxIter,
		Seed:        ctx.Rng.Int63(),
	})
	if err != nil {
		return ctx.DegradeToSpaceFill(m.Name(), err), nil
	}
	acq := m.Acquisition
	if acq == nil {
		acq = core.EI{}
	}
	// Advance each source with one new pseudo sample proposed by the
	// joint model and answered by the source's black-box surrogate mean.
	for i, srcModel := range models {
		hist := pseudoHistory(m.pseudoX[i], m.pseudoY[i])
		u := core.SearchNext(lcmSlice{m: model, task: i}, ctx.Problem.ParamSpace, acq, hist, ctx.Rng, ctx.Search)
		m.pseudoX[i] = append(m.pseudoX[i], u)
		m.pseudoY[i] = append(m.pseudoY[i], srcModel.PredictMean(u))
	}
	surr := lcmSlice{m: model, task: nTasks - 1}
	return core.SearchNext(surr, ctx.Problem.ParamSpace, acq, ctx.History, ctx.Rng, ctx.Search), nil
}

// seedPseudo initializes the per-source pseudo-sample sets from a Latin
// hypercube answered by each source surrogate's mean.
func (m *MultitaskPS) seedPseudo(dim int, models []*gp.GP, rng *rand.Rand) {
	nInit := m.InitPseudo
	if nInit <= 0 {
		nInit = dim + 2
		if nInit < 4 {
			nInit = 4
		}
	}
	m.pseudoX = make([][][]float64, len(models))
	m.pseudoY = make([][]float64, len(models))
	for i, model := range models {
		pts := sample.LatinHypercube(nInit, dim, rng)
		ys := make([]float64, nInit)
		for j, u := range pts {
			ys[j] = model.PredictMean(u)
		}
		m.pseudoX[i] = pts
		m.pseudoY[i] = ys
	}
}

// pseudoHistory wraps a pseudo-sample set as a History so the shared
// acquisition search can dedup against it.
func pseudoHistory(X [][]float64, Y []float64) *core.History {
	h := &core.History{}
	for i := range X {
		h.Append(core.Sample{ParamU: X[i], Y: Y[i]})
	}
	return h
}
