package tla

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/apps/synth"
	"gptunecrowd/internal/core"
)

// demoSetup builds the paper's Fig. 3(a) scenario: source task t=0.8
// with random samples, target task t=1.0.
func demoSetup(t *testing.T, nSrc int, seed int64) (*core.Problem, map[string]interface{}, []*Source) {
	t.Helper()
	p := synth.DemoProblem()
	rng := rand.New(rand.NewSource(seed))
	X, Y, err := synth.CollectSamples(p, map[string]interface{}{"t": 0.8}, nSrc, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p, map[string]interface{}{"t": 1.0}, []*Source{NewSource("t=0.8", X, Y)}
}

func runTuner(t *testing.T, p *core.Problem, task map[string]interface{}, prop core.Proposer, budget int, seed int64) *core.History {
	t.Helper()
	h, err := core.RunLoop(p, task, prop, core.LoopOptions{Budget: budget, Seed: seed,
		Search: core.SearchOptions{Candidates: 128, DEGens: 15}})
	if err != nil {
		t.Fatalf("%s: %v", prop.Name(), err)
	}
	if h.Len() != budget {
		t.Fatalf("%s consumed %d of %d budget", prop.Name(), h.Len(), budget)
	}
	return h
}

func finalBest(h *core.History) float64 {
	b, ok := h.Best()
	if !ok {
		return math.Inf(1)
	}
	return b.Y
}

func TestSourceSubsampleKeepsBest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 50)
	Y := make([]float64, 50)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		Y[i] = rng.Float64() + 1
	}
	Y[33] = 0.1 // global best
	s := NewSource("s", X, Y)
	sub := s.Subsample(10, rng)
	if sub.Len() != 10 {
		t.Fatalf("subsample size %d", sub.Len())
	}
	found := false
	for _, y := range sub.Y {
		if y == 0.1 {
			found = true
		}
	}
	if !found {
		t.Fatal("subsample lost the source optimum")
	}
	// No-op when already small enough.
	if s.Subsample(100, rng) != s {
		t.Fatal("subsample should be identity when n >= len")
	}
}

func TestAllProposersRunAndImprove(t *testing.T) {
	p, task, sources := demoSetup(t, 60, 2)
	// Random-search reference over the same budget.
	rng := rand.New(rand.NewSource(3))
	worst := 0.0
	for i := 0; i < 200; i++ {
		u := core.RandomPoint(p.ParamSpace, rng)
		y, _ := p.Evaluator.Evaluate(task, p.ParamSpace.Decode(u))
		worst += y
	}
	meanRandom := worst / 200

	proposers := []core.Proposer{
		NewWeightedSumEqual(sources),
		NewWeightedSumDynamic(sources),
		NewMultitaskTS(sources),
		NewMultitaskPS(sources),
		NewStacking(sources),
		NewEnsemble(sources, EnsembleProposed),
		NewEnsemble(sources, EnsembleToggling),
		NewEnsemble(sources, EnsembleProb),
	}
	for _, prop := range proposers {
		h := runTuner(t, p, task, prop, 8, 4)
		best := finalBest(h)
		if math.IsInf(best, 1) {
			t.Fatalf("%s found nothing", prop.Name())
		}
		// Every tuner should comfortably beat the random mean.
		if best > meanRandom {
			t.Fatalf("%s best %v worse than random mean %v", prop.Name(), best, meanRandom)
		}
	}
}

func TestTLABeatsNoTLAAtSmallBudget(t *testing.T) {
	// The paper's headline qualitative claim: with few evaluations and a
	// correlated source, TLA outperforms NoTLA on average.
	p, task, sources := demoSetup(t, 100, 5)
	var tlaSum, noSum float64
	const repeats = 3
	const budget = 5
	for r := 0; r < repeats; r++ {
		hT := runTuner(t, p, task, NewEnsemble(sources, EnsembleProposed), budget, int64(10+r))
		hN := runTuner(t, p, task, core.NewGPTuner(), budget, int64(10+r))
		tlaSum += finalBest(hT)
		noSum += finalBest(hN)
	}
	if tlaSum/repeats > noSum/repeats+0.15 {
		t.Fatalf("TLA (%v) clearly worse than NoTLA (%v) at budget %d", tlaSum/repeats, noSum/repeats, budget)
	}
}

func TestNormalizeWeights(t *testing.T) {
	w := []float64{2, 2}
	if !normalizeWeights(w) || w[0] != 0.5 {
		t.Fatalf("normalize = %v", w)
	}
	z := []float64{0, 0}
	if normalizeWeights(z) {
		t.Fatal("zero weights should fail normalization")
	}
}

func TestWeightedSurrogateCombination(t *testing.T) {
	a := core.SurrogateFunc(func(x []float64) (float64, float64) { return 2, 1 })
	b := core.SurrogateFunc(func(x []float64) (float64, float64) { return 4, 4 })
	ws := &weightedSurrogate{models: []core.Predictor{a, b}, weights: []float64{0.5, 0.5}}
	mean, std := ws.Predict([]float64{0})
	if mean != 3 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(std-2) > 1e-12 { // geometric mean of 1 and 4
		t.Fatalf("std = %v", std)
	}
}

func TestExplorationRateEq4(t *testing.T) {
	// Eq. 4: rate = (|T|·p/n) / (1 + |T|·p/n).
	if r := explorationRate(3, 2, 6); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("rate = %v, want 0.5", r)
	}
	if r := explorationRate(3, 2, 0); r != 1 {
		t.Fatalf("rate with no samples = %v", r)
	}
	// Monotone decreasing in n.
	if explorationRate(3, 5, 10) <= explorationRate(3, 5, 100) {
		t.Fatal("rate should fall as samples accumulate")
	}
}

func TestEnsembleTogglingCycles(t *testing.T) {
	p, task, sources := demoSetup(t, 40, 7)
	e := NewEnsemble(sources, EnsembleToggling)
	runTuner(t, p, task, e, 6, 8)
	counts := e.ChosenCounts()
	for name, c := range counts {
		if c != 2 {
			t.Fatalf("toggling uneven: %s chosen %d times (%v)", name, c, counts)
		}
	}
}

func TestEnsembleCreditsBestOutputs(t *testing.T) {
	p, task, sources := demoSetup(t, 40, 9)
	e := NewEnsemble(sources, EnsembleProposed)
	h := runTuner(t, p, task, e, 6, 10)
	// After the run, the minimum over per-algorithm bests must equal the
	// run best.
	e.credit(h)
	min := math.Inf(1)
	for _, v := range e.bestOut {
		if v < min {
			min = v
		}
	}
	if b := finalBest(h); math.Abs(min-b) > 1e-12 {
		t.Fatalf("credited min %v != run best %v", min, b)
	}
}

func TestProposersRequireSources(t *testing.T) {
	ctx := &core.ProposeContext{}
	for _, prop := range []core.Proposer{
		NewWeightedSumEqual(nil),
		NewMultitaskTS(nil),
		NewMultitaskPS(nil),
		NewStacking(nil),
	} {
		if _, err := prop.Propose(ctx); err == nil {
			t.Fatalf("%s should fail without sources", prop.Name())
		}
	}
}

func TestProposerNames(t *testing.T) {
	srcs := []*Source{NewSource("s", [][]float64{{0}}, []float64{1})}
	cases := map[string]core.Proposer{
		"Multitask(TS)":        NewMultitaskTS(srcs),
		"Multitask(PS)":        NewMultitaskPS(srcs),
		"WeightedSum(equal)":   NewWeightedSumEqual(srcs),
		"WeightedSum(dynamic)": NewWeightedSumDynamic(srcs),
		"Stacking":             NewStacking(srcs),
		"Ensemble(proposed)":   NewEnsemble(srcs, EnsembleProposed),
		"Ensemble(toggling)":   NewEnsemble(srcs, EnsembleToggling),
		"Ensemble(prob)":       NewEnsemble(srcs, EnsembleProb),
	}
	for want, prop := range cases {
		if prop.Name() != want {
			t.Fatalf("name = %q, want %q", prop.Name(), want)
		}
	}
	ws := &WeightedSum{StaticWeights: []float64{1, 2}}
	if ws.Name() != "WeightedSum(static)" {
		t.Fatal("static name wrong")
	}
}

func TestMultitaskTSTransfersKnowledge(t *testing.T) {
	// With a strongly correlated source (identical task), Multitask(TS)
	// should find a near-optimal point within very few evaluations.
	p := synth.DemoProblem()
	rng := rand.New(rand.NewSource(11))
	task := map[string]interface{}{"t": 1.0}
	X, Y, err := synth.CollectSamples(p, task, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	sources := []*Source{NewSource("same-task", X, Y)}
	// True optimum estimate by dense scan.
	trueBest := math.Inf(1)
	for i := 0; i < 2000; i++ {
		y := synth.Demo(1.0, float64(i)/2000)
		if y < trueBest {
			trueBest = y
		}
	}
	h := runTuner(t, p, task, NewMultitaskTS(sources), 5, 12)
	if got := finalBest(h); got > trueBest+0.3 {
		t.Fatalf("Multitask(TS) best %v far from optimum %v", got, trueBest)
	}
}

func TestWeightedSumStaticWeights(t *testing.T) {
	p, task, sources := demoSetup(t, 30, 21)
	ws := &WeightedSum{Sources: sources, StaticWeights: []float64{3, 1}}
	if ws.Name() != "WeightedSum(static)" {
		t.Fatal("name")
	}
	h := runTuner(t, p, task, ws, 5, 22)
	if _, ok := h.Best(); !ok {
		t.Fatal("static-weight run found nothing")
	}
}

func TestWeightedSumDynamicDegradesGracefully(t *testing.T) {
	// With a single target sample, the dynamic solve has no rows and
	// must fall back to equal weights without erroring.
	p, task, sources := demoSetup(t, 20, 23)
	ws := NewWeightedSumDynamic(sources)
	h := runTuner(t, p, task, ws, 2, 24)
	if h.NumOK() != 2 {
		t.Fatal("short run failed")
	}
}

func TestEnsemblePoolFallbackOnError(t *testing.T) {
	// A pool member that always errors must not kill the run.
	p, task, sources := demoSetup(t, 20, 25)
	e := NewEnsemble(sources, EnsembleToggling)
	e.Pool[0] = failingProposer{}
	h := runTuner(t, p, task, e, 4, 26)
	if h.NumOK() == 0 {
		t.Fatal("fallback did not rescue the run")
	}
}

type failingProposer struct{}

func (failingProposer) Name() string { return "Failing" }
func (failingProposer) Propose(*core.ProposeContext) ([]float64, error) {
	return nil, errSentinel
}

var errSentinel = fmt.Errorf("deliberate failure")
