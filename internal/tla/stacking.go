package tla

import (
	"fmt"
	"math"
	"sort"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/gp"
	"gptunecrowd/internal/kernel"
)

// Stacking is the Vizier-style transfer proposer (Section V-D): source
// tasks are ordered by sample count (largest first), each successive
// task gets a GP fitted on the *residuals* against the accumulated mean,
// and the target's residual model is stacked last. Posterior means add;
// posterior standard deviations combine by sample-count-weighted
// geometric means.
type Stacking struct {
	Sources     []*Source
	Kernel      kernel.Type
	Acquisition core.Acquisition

	chain *stackChain // cached source chain
}

// NewStacking returns the Stacking proposer.
func NewStacking(sources []*Source) *Stacking {
	return &Stacking{Sources: sources}
}

// Name implements core.Proposer.
func (s *Stacking) Name() string { return "Stacking" }

// stackChain is the fitted source part of the stack.
type stackChain struct {
	gps    []*gp.GP // residual models, in stack order
	counts []int    // sample counts, aligned with gps
}

// meanAt returns the accumulated source mean M(x) = Σ μ'_i(x).
func (c *stackChain) meanAt(x []float64) float64 {
	var m float64
	for _, g := range c.gps {
		m += g.PredictMean(x)
	}
	return m
}

// stdAt returns the iterative weighted-geometric-mean std over the
// source chain: σ_i = (σ'_i)^β_i · (σ_{i−1})^{1−β_i} with
// β_i = n_i / (n_i + n_{i−1}).
func (c *stackChain) stdAt(x []float64) float64 {
	var std float64
	for i, g := range c.gps {
		_, s := g.Predict(x)
		if s < 1e-12 {
			s = 1e-12
		}
		if i == 0 {
			std = s
			continue
		}
		beta := float64(c.counts[i]) / float64(c.counts[i]+c.counts[i-1])
		std = math.Pow(s, beta) * math.Pow(std, 1-beta)
	}
	return std
}

// buildChain fits the source residual chain once (sources are static
// during a run).
func (s *Stacking) buildChain(mask []bool) (*stackChain, error) {
	ordered := append([]*Source(nil), s.Sources...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Len() > ordered[b].Len() })
	chain := &stackChain{}
	for i, src := range ordered {
		ys := src.Y
		if i > 0 {
			ys = make([]float64, len(src.Y))
			for j, y := range src.Y {
				ys[j] = y - chain.meanAt(src.X[j])
			}
		}
		g, err := gp.Fit(src.X, ys, gp.Options{Kernel: s.Kernel, Categorical: mask, Seed: int64(i + 1)})
		if err != nil {
			return nil, fmt.Errorf("tla: stacking source %q: %w", src.Name, err)
		}
		chain.gps = append(chain.gps, g)
		chain.counts = append(chain.counts, src.Len())
	}
	return chain, nil
}

// stackedSurrogate is the full stack including the target residual model.
type stackedSurrogate struct {
	chain  *stackChain
	target *gp.GP // may be nil (no target samples yet)
	nTgt   int
}

// Predict implements core.Predictor.
func (s *stackedSurrogate) Predict(x []float64) (float64, float64) {
	mean := s.chain.meanAt(x)
	srcStd := s.chain.stdAt(x)
	if s.target == nil {
		return mean, srcStd
	}
	tm, ts := s.target.Predict(x)
	if ts < 1e-12 {
		ts = 1e-12
	}
	mean += tm
	nSrcLast := s.chain.counts[len(s.chain.counts)-1]
	beta := float64(s.nTgt) / float64(s.nTgt+nSrcLast)
	return mean, math.Pow(ts, beta) * math.Pow(srcStd, 1-beta)
}

// Propose implements core.Proposer.
func (s *Stacking) Propose(ctx *core.ProposeContext) ([]float64, error) {
	if len(s.Sources) == 0 {
		return nil, ErrNoSources
	}
	X, Y := ctx.History.XY()
	if len(X) == 0 {
		return equalWeightFirstEval(ctx, s.Sources, s.Kernel)
	}
	mask := ctx.Problem.CategoricalMask()
	if s.chain == nil {
		chain, err := s.buildChain(mask)
		if err != nil {
			return nil, err
		}
		s.chain = chain
	}
	surr := &stackedSurrogate{chain: s.chain, nTgt: len(X)}
	if len(X) >= 2 {
		resid := make([]float64, len(Y))
		for j := range Y {
			resid[j] = Y[j] - s.chain.meanAt(X[j])
		}
		g, err := gp.Fit(X, resid, gp.Options{Kernel: s.Kernel, Categorical: mask, Seed: ctx.Rng.Int63()})
		if err == nil {
			surr.target = g
		}
	}
	acq := s.Acquisition
	if acq == nil {
		acq = core.EI{}
	}
	return core.SearchNext(surr, ctx.Problem.ParamSpace, acq, ctx.History, ctx.Rng, ctx.Search), nil
}
