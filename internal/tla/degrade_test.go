package tla

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/lcm"
)

// TestMultitaskDegradesOnLCMFitFailure drives the multitask proposers
// through a session whose LCM fit always fails: the run must complete on
// space-filling fallbacks (counted and logged), never abort.
func TestMultitaskDegradesOnLCMFitFailure(t *testing.T) {
	orig := lcmFit
	lcmFit = func(X [][][]float64, Y [][]float64, opts lcm.Options) (*lcm.Model, error) {
		return nil, errors.New("injected lcm failure")
	}
	defer func() { lcmFit = orig }()

	p, task, sources := demoSetup(t, 20, 5)
	for _, prop := range []core.Proposer{NewMultitaskTS(sources), NewMultitaskPS(sources)} {
		prop := prop
		t.Run(prop.Name(), func(t *testing.T) {
			const budget = 5
			var logs []string
			sess, err := core.NewSession(p, task, prop, core.SessionOptions{
				Budget: budget,
				Seed:   9,
				Search: core.SearchOptions{Candidates: 64, DEGens: 5},
				Logf: func(format string, args ...interface{}) {
					logs = append(logs, fmt.Sprintf(format, args...))
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			h, err := sess.Run()
			if err != nil {
				t.Fatalf("session died on LCM fit failure: %v", err)
			}
			if h.Len() != budget {
				t.Fatalf("consumed %d of %d budget", h.Len(), budget)
			}
			st := sess.Stats()
			if st.FitFailures == 0 || st.SpaceFill == 0 {
				t.Fatalf("stats %+v: degradations were not counted", st)
			}
			found := false
			for _, l := range logs {
				if strings.Contains(l, "injected lcm failure") {
					found = true
				}
			}
			if !found {
				t.Fatalf("no degradation log line mentioned the fit error: %q", logs)
			}
		})
	}
}

// TestMultitaskRecoversAfterTransientLCMFailure flips the fit back to
// the real implementation mid-run and checks the proposer resumes
// modeling instead of staying degraded.
func TestMultitaskRecoversAfterTransientLCMFailure(t *testing.T) {
	orig := lcmFit
	calls := 0
	lcmFit = func(X [][][]float64, Y [][]float64, opts lcm.Options) (*lcm.Model, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient lcm failure")
		}
		return orig(X, Y, opts)
	}
	defer func() { lcmFit = orig }()

	p, task, sources := demoSetup(t, 20, 6)
	sess, err := core.NewSession(p, task, NewMultitaskTS(sources), core.SessionOptions{
		Budget: 4,
		Seed:   13,
		Search: core.SearchOptions{Candidates: 64, DEGens: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.FitFailures != 1 || st.SpaceFill != 1 {
		t.Fatalf("stats %+v, want exactly one degradation", st)
	}
	if calls < 2 {
		t.Fatalf("lcm fit called %d times; proposer never resumed modeling", calls)
	}
}
