package tla

import (
	"fmt"
	"math"

	"gptunecrowd/internal/core"
)

// EnsembleMode selects between the proposed ensemble and the two naive
// baselines the paper compares against (Section V-E).
type EnsembleMode int

const (
	// EnsembleProposed is Algorithm 1: PDF selection (Eq. 3) with the
	// dynamic exploration rate of Eq. 4.
	EnsembleProposed EnsembleMode = iota
	// EnsembleToggling cycles through the pool round-robin.
	EnsembleToggling
	// EnsembleProb uses only the PDF, with zero exploration rate.
	EnsembleProb
)

// Ensemble dynamically chooses a TLA algorithm from a pool for each
// target evaluation. The default pool is {Multitask(TS),
// WeightedSum(dynamic), Stacking}, as in the paper.
type Ensemble struct {
	Pool []core.Proposer
	Mode EnsembleMode

	// chosen[i] is the pool index that proposed evaluation i; credited
	// lazily as results appear in the history.
	chosen   []int
	bestOut  []float64 // per-algorithm best observed objective
	credited int
}

// NewEnsemble builds the default pool over the given sources.
func NewEnsemble(sources []*Source, mode EnsembleMode) *Ensemble {
	return &Ensemble{
		Pool: []core.Proposer{
			NewMultitaskTS(sources),
			NewWeightedSumDynamic(sources),
			NewStacking(sources),
		},
		Mode: mode,
	}
}

// Name implements core.Proposer.
func (e *Ensemble) Name() string {
	switch e.Mode {
	case EnsembleToggling:
		return "Ensemble(toggling)"
	case EnsembleProb:
		return "Ensemble(prob)"
	}
	return "Ensemble(proposed)"
}

// credit scans history samples not yet attributed and updates the
// per-algorithm best outputs.
func (e *Ensemble) credit(h *core.History) {
	for ; e.credited < len(h.Samples) && e.credited < len(e.chosen); e.credited++ {
		s := h.Samples[e.credited]
		if s.Failed {
			continue
		}
		alg := e.chosen[e.credited]
		if s.Y < e.bestOut[alg] {
			e.bestOut[alg] = s.Y
		}
	}
}

// explorationRate implements Eq. 4.
func explorationRate(poolSize, nParams, nSamples int) float64 {
	if nSamples <= 0 {
		return 1
	}
	v := float64(poolSize) * float64(nParams) / float64(nSamples)
	return v / (1 + v)
}

// pickAlgorithm implements the selection of Algorithm 1 lines 5–10.
func (e *Ensemble) pickAlgorithm(ctx *core.ProposeContext) int {
	n := len(e.Pool)
	switch e.Mode {
	case EnsembleToggling:
		return ctx.Iter % n
	case EnsembleProb:
		return e.pickByPDF(ctx)
	default:
		rate := explorationRate(n, ctx.Problem.ParamSpace.Dim(), ctx.History.NumOK())
		if ctx.Rng.Float64() < rate {
			return ctx.Rng.Intn(n)
		}
		return e.pickByPDF(ctx)
	}
}

// pickByPDF samples the pool index from Eq. 3: probability proportional
// to 1/best_output. Algorithms without a credited success yet share the
// best observed value (optimistic default); non-positive objectives are
// shifted to keep the PDF well defined.
func (e *Ensemble) pickByPDF(ctx *core.ProposeContext) int {
	n := len(e.Pool)
	vals := make([]float64, n)
	globalBest := math.Inf(1)
	for _, v := range e.bestOut {
		if v < globalBest {
			globalBest = v
		}
	}
	if math.IsInf(globalBest, 1) {
		return ctx.Rng.Intn(n)
	}
	shift := 0.0
	if globalBest <= 0 {
		shift = -globalBest + 1e-9
	}
	var sum float64
	for i, v := range e.bestOut {
		if math.IsInf(v, 1) {
			v = globalBest
		}
		vals[i] = 1 / (v + shift)
		sum += vals[i]
	}
	r := ctx.Rng.Float64() * sum
	for i, v := range vals {
		r -= v
		if r <= 0 {
			return i
		}
	}
	return n - 1
}

// Propose implements core.Proposer: Algorithm 1 of the paper.
func (e *Ensemble) Propose(ctx *core.ProposeContext) ([]float64, error) {
	if len(e.Pool) == 0 {
		return nil, fmt.Errorf("tla: ensemble with empty pool")
	}
	if e.bestOut == nil {
		e.bestOut = make([]float64, len(e.Pool))
		for i := range e.bestOut {
			e.bestOut[i] = math.Inf(1)
		}
	}
	e.credit(ctx.History)
	alg := e.pickAlgorithm(ctx)
	u, err := e.Pool[alg].Propose(ctx)
	if err != nil {
		// A single misbehaving pool member should not end the run; fall
		// back to the next algorithm round-robin.
		for off := 1; off < len(e.Pool); off++ {
			alt := (alg + off) % len(e.Pool)
			if u2, err2 := e.Pool[alt].Propose(ctx); err2 == nil {
				e.chosen = append(e.chosen, alt)
				return u2, nil
			}
		}
		return nil, err
	}
	e.chosen = append(e.chosen, alg)
	return u, nil
}

// ChosenCounts reports how often each pool member was selected — a
// diagnostic used by the experiments harness.
func (e *Ensemble) ChosenCounts() map[string]int {
	out := make(map[string]int, len(e.Pool))
	for _, alg := range e.chosen {
		out[e.Pool[alg].Name()]++
	}
	return out
}
