// Package tla implements GPTuneCrowd's transfer-learning algorithm pool
// (Table I of the paper): Multitask(PS), Multitask(TS),
// WeightedSum(static/equal), WeightedSum(dynamic), Stacking, and the
// proposed Ensemble, plus the simpler Ensemble(toggling) and
// Ensemble(prob) baselines. Every algorithm is a core.Proposer that can
// be dropped into the tuning loop.
package tla

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/gp"
	"gptunecrowd/internal/kernel"
)

// Source is a pre-collected dataset for one source task: parameter
// points (normalized to the target problem's unit hypercube) and their
// measured objective values. These are the crowd-contributed samples
// downloaded from the shared database.
type Source struct {
	Name string
	X    [][]float64
	Y    []float64

	model    *gp.GP
	modelErr error
}

// NewSource wraps a source dataset. It panics when X and Y disagree.
func NewSource(name string, X [][]float64, Y []float64) *Source {
	if len(X) != len(Y) {
		panic(fmt.Sprintf("tla: source %q has %d inputs but %d outputs", name, len(X), len(Y)))
	}
	return &Source{Name: name, X: X, Y: Y}
}

// Len returns the number of samples.
func (s *Source) Len() int { return len(s.X) }

// Model lazily fits (and caches) a GP surrogate on the source data.
func (s *Source) Model(mask []bool, kern kernel.Type, seed int64) (*gp.GP, error) {
	if s.model == nil && s.modelErr == nil {
		s.model, s.modelErr = gp.Fit(s.X, s.Y, gp.Options{
			Kernel:      kern,
			Categorical: mask,
			Seed:        seed,
		})
	}
	return s.model, s.modelErr
}

// Subsample returns a source restricted to at most n samples, chosen
// uniformly at random but always including the best observation (losing
// the source optimum would throw away the most transferable knowledge).
func (s *Source) Subsample(n int, rng *rand.Rand) *Source {
	if n <= 0 || s.Len() <= n {
		return s
	}
	bestIdx := 0
	for i, v := range s.Y {
		if v < s.Y[bestIdx] {
			bestIdx = i
		}
	}
	perm := rng.Perm(s.Len())
	idx := make([]int, 0, n)
	idx = append(idx, bestIdx)
	for _, p := range perm {
		if len(idx) == n {
			break
		}
		if p != bestIdx {
			idx = append(idx, p)
		}
	}
	X := make([][]float64, len(idx))
	Y := make([]float64, len(idx))
	for i, p := range idx {
		X[i] = s.X[p]
		Y[i] = s.Y[p]
	}
	return NewSource(s.Name, X, Y)
}

// ErrNoSources is returned when a TLA proposer is constructed without
// source data.
var ErrNoSources = errors.New("tla: transfer learning requires at least one source task")

// sourceModels fits every source surrogate, returning an error when any
// fit fails.
func sourceModels(sources []*Source, mask []bool, kern kernel.Type, seed int64) ([]*gp.GP, error) {
	models := make([]*gp.GP, len(sources))
	for i, s := range sources {
		m, err := s.Model(mask, kern, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("tla: source %q surrogate: %w", s.Name, err)
		}
		models[i] = m
	}
	return models, nil
}

// equalWeightFirstEval implements the paper's convention for the very
// first target evaluation: with no target information, search the
// equal-weight combination of the source surrogates. Exploitation is
// appropriate here (there is no incumbent for EI), so we minimize the
// combined LCB.
func equalWeightFirstEval(ctx *core.ProposeContext, sources []*Source, kern kernel.Type) ([]float64, error) {
	models, err := sourceModels(sources, ctx.Problem.CategoricalMask(), kern, 1)
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(models))
	surrs := make([]core.Predictor, len(models))
	for i := range w {
		w[i] = 1.0 / float64(len(models))
		surrs[i] = models[i]
	}
	comb := &weightedSurrogate{models: surrs, weights: w}
	return core.SearchNext(comb, ctx.Problem.ParamSpace, core.LCB{Kappa: 1.0}, ctx.History, ctx.Rng, ctx.Search), nil
}

// weightedSurrogate combines surrogates per the paper's Eqs. (1)–(2):
// arithmetic weighted mean of means and geometric weighted mean of
// standard deviations.
type weightedSurrogate struct {
	models  []core.Predictor
	weights []float64
}

// Predict implements core.Predictor.
func (w *weightedSurrogate) Predict(x []float64) (float64, float64) {
	var mean float64
	logStd := 0.0
	for i, m := range w.models {
		mu, sd := m.Predict(x)
		mean += w.weights[i] * mu
		if sd < 1e-12 {
			sd = 1e-12
		}
		logStd += w.weights[i] * math.Log(sd)
	}
	return mean, math.Exp(logStd)
}
