package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormPDFCDFKnown(t *testing.T) {
	if math.Abs(NormPDF(0)-0.3989422804014327) > 1e-15 {
		t.Fatalf("NormPDF(0) = %v", NormPDF(0))
	}
	if math.Abs(NormCDF(0)-0.5) > 1e-15 {
		t.Fatalf("NormCDF(0) = %v", NormCDF(0))
	}
	if math.Abs(NormCDF(1.959963984540054)-0.975) > 1e-12 {
		t.Fatalf("NormCDF(1.96) = %v", NormCDF(1.959963984540054))
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-6, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 1 - 1e-6} {
		z := NormQuantile(p)
		if got := NormCDF(z); math.Abs(got-p) > 1e-9 {
			t.Fatalf("round trip p=%v: got %v", p, got)
		}
	}
}

func TestNormQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for p=%v", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if ArgMin([]float64{3, 1, 2}) != 1 {
		t.Fatal("ArgMin wrong")
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty-input conventions violated")
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// Sample variance = 5/3.
	if math.Abs(SampleVariance(xs)-5.0/3.0) > 1e-12 {
		t.Fatalf("SampleVariance = %v", SampleVariance(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if math.Abs(Pearson(x, y)-1) > 1e-12 {
		t.Fatalf("Pearson = %v", Pearson(x, y))
	}
	yneg := []float64{8, 6, 4, 2}
	if math.Abs(Pearson(x, yneg)+1) > 1e-12 {
		t.Fatalf("Pearson = %v", Pearson(x, yneg))
	}
	if Pearson(x, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series should yield 0")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // monotone nonlinear
	if math.Abs(Spearman(x, y)-1) > 1e-12 {
		t.Fatalf("Spearman = %v", Spearman(x, y))
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v", r)
		}
	}
}

func TestBootstrapMeanConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, 500)
	for i := range data {
		data[i] = rng.NormFloat64() + 3
	}
	reps := Bootstrap(len(data), 200, rng, func(idx []int) float64 {
		var s float64
		for _, i := range idx {
			s += data[i]
		}
		return s / float64(len(idx))
	})
	if m := Mean(reps); math.Abs(m-3) > 0.2 {
		t.Fatalf("bootstrap mean = %v", m)
	}
	conf := BootstrapConf(reps, 0.05)
	if conf <= 0 || conf > 0.5 {
		t.Fatalf("bootstrap conf = %v", conf)
	}
}

func TestNormCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return NormCDF(lo) <= NormCDF(hi)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
