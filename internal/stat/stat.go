// Package stat provides the probability and descriptive-statistics
// helpers used by the surrogate models, acquisition functions and the
// Sobol sensitivity estimators: normal distribution functions, summary
// statistics, correlation measures and bootstrap resampling.
package stat

import (
	"math"
	"math/rand"
	"sort"
)

const invSqrt2Pi = 0.3989422804014327 // 1/√(2π)

// NormPDF returns the standard normal density at z.
func NormPDF(z float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*z*z)
}

// NormCDF returns the standard normal cumulative distribution at z.
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormQuantile returns the inverse standard normal CDF using the
// Acklam rational approximation (relative error < 1.15e-9), refined by
// one Halley step. Panics for p outside (0, 1).
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stat: NormQuantile requires 0 < p < 1")
	}
	// Coefficients from Peter Acklam's algorithm.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n)
}

// SampleVariance returns the unbiased (n−1) variance estimate.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return Variance(xs) * float64(n) / float64(n-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stat: Min of empty slice")
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of xs; panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stat: Max of empty slice")
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMin returns the index of the smallest element; panics on empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stat: ArgMin of empty slice")
	}
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stat: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stat: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stat: Pearson length mismatch")
	}
	if len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of x and y.
func Spearman(x, y []float64) float64 {
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the (average-tie) ranks of xs, 1-based.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Bootstrap draws nboot resampled replicates of statistic(sample) and
// returns them. The statistic receives index slices into the original
// data so callers can resample multiple aligned arrays consistently.
func Bootstrap(n, nboot int, rng *rand.Rand, statistic func(idx []int) float64) []float64 {
	out := make([]float64, nboot)
	idx := make([]int, n)
	for b := 0; b < nboot; b++ {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		out[b] = statistic(idx)
	}
	return out
}

// BootstrapConf returns the half-width of the (1−alpha) normal-theory
// bootstrap confidence interval of the replicates, matching SALib's
// convention (z * std of replicates).
func BootstrapConf(replicates []float64, alpha float64) float64 {
	if len(replicates) < 2 {
		return 0
	}
	z := NormQuantile(1 - alpha/2)
	return z * math.Sqrt(SampleVariance(replicates))
}
