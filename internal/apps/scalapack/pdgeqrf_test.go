package scalapack

import (
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
)

func haswellApp(nodes int) *App { return New(machine.CoriHaswell(nodes)) }

func eval(t *testing.T, a *App, m, n, mb, nb, lg, p int) float64 {
	t.Helper()
	y, err := a.Evaluate(
		map[string]interface{}{"m": m, "n": n},
		map[string]interface{}{"mb": mb, "nb": nb, "lg2npernode": lg, "p": p},
	)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func TestRuntimePositiveAndFinite(t *testing.T) {
	a := haswellApp(8)
	rng := rand.New(rand.NewSource(1))
	sp := a.ParamSpace()
	task := map[string]interface{}{"m": 10000, "n": 10000}
	for i := 0; i < 200; i++ {
		u := core.RandomPoint(sp, rng)
		y, err := a.Evaluate(task, sp.Decode(u))
		if err != nil {
			t.Fatalf("unexpected failure: %v", err)
		}
		if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("bad runtime %v for %v", y, sp.Decode(u))
		}
	}
}

func TestLargerProblemsTakeLonger(t *testing.T) {
	a := haswellApp(8)
	small := eval(t, a, 6000, 6000, 8, 8, 4, 32)
	big := eval(t, a, 20000, 20000, 8, 8, 4, 32)
	if big <= small {
		t.Fatalf("scaling broken: %v vs %v", small, big)
	}
}

func TestBlockSizeHasInteriorOptimum(t *testing.T) {
	a := haswellApp(8)
	a.NoiseSigma = 0
	tiny := eval(t, a, 10000, 10000, 1, 1, 4, 32)
	mid := eval(t, a, 10000, 10000, 8, 8, 4, 32)
	if mid >= tiny {
		t.Fatalf("moderate blocks should beat tiny blocks: %v vs %v", mid, tiny)
	}
	huge := eval(t, a, 10000, 10000, 15, 15, 4, 32)
	// Huge blocks should not be dramatically better than moderate ones
	// (imbalance pushes back).
	if huge < mid*0.7 {
		t.Fatalf("block-size response surface lacks a knee: mid=%v huge=%v", mid, huge)
	}
}

func TestMoreNodesFaster(t *testing.T) {
	small := haswellApp(4)
	large := haswellApp(16)
	small.NoiseSigma = 0
	large.NoiseSigma = 0
	ys := eval(t, small, 20000, 20000, 8, 8, 4, 64)
	yl := eval(t, large, 20000, 20000, 8, 8, 4, 64)
	if yl >= ys {
		t.Fatalf("more nodes should be faster: 4n=%v 16n=%v", ys, yl)
	}
}

func TestRanksExceedingCoresFail(t *testing.T) {
	a := haswellApp(2)
	_, err := a.Evaluate(
		map[string]interface{}{"m": 5000, "n": 5000},
		map[string]interface{}{"mb": 4, "nb": 4, "lg2npernode": 6, "p": 4}, // 2^6=64 > 32
	)
	if err == nil {
		t.Fatal("expected error for oversubscribed node")
	}
}

func TestMissingParamsRejected(t *testing.T) {
	a := haswellApp(2)
	if _, err := a.Evaluate(map[string]interface{}{"m": 5000}, map[string]interface{}{}); err == nil {
		t.Fatal("expected task validation error")
	}
	if _, err := a.Evaluate(map[string]interface{}{"m": 5000, "n": 5000},
		map[string]interface{}{"mb": 4}); err == nil {
		t.Fatal("expected param validation error")
	}
}

func TestNoiseDeterministicPerConfig(t *testing.T) {
	a := haswellApp(4)
	y1 := eval(t, a, 8000, 8000, 6, 6, 3, 16)
	y2 := eval(t, a, 8000, 8000, 6, 6, 3, 16)
	if y1 != y2 {
		t.Fatal("same config must return the same measured runtime")
	}
	b := haswellApp(4)
	b.Seed = 99
	y3 := eval(t, b, 8000, 8000, 6, 6, 3, 16)
	if y1 == y3 {
		t.Fatal("different seeds should decorrelate noise")
	}
}

func TestCrossMachineCorrelation(t *testing.T) {
	// Haswell and KNL runtimes over random configs should be positively
	// correlated (the premise of Fig. 5(b)) but not identical.
	hsw := New(machine.CoriHaswell(32))
	knl := New(machine.CoriKNL(32))
	hsw.NoiseSigma, knl.NoiseSigma = 0, 0
	task := map[string]interface{}{"m": 20000, "n": 20000}
	sp := hsw.ParamSpace()
	rng := rand.New(rand.NewSource(2))
	var xs, ys []float64
	for i := 0; i < 60; i++ {
		u := core.RandomPoint(sp, rng)
		cfg := sp.Decode(u)
		yh, err1 := hsw.Evaluate(task, cfg)
		yk, err2 := knl.Evaluate(task, cfg)
		if err1 != nil || err2 != nil {
			continue
		}
		xs = append(xs, yh)
		ys = append(ys, yk)
	}
	if len(xs) < 30 {
		t.Fatal("too many failures")
	}
	// Rank correlation by hand (Spearman via simple Pearson on ranks is
	// in internal/stat; avoid the import cycle risk by a crude check):
	// count concordant pairs.
	concordant, total := 0, 0
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			total++
			if (xs[i]-xs[j])*(ys[i]-ys[j]) > 0 {
				concordant++
			}
		}
	}
	frac := float64(concordant) / float64(total)
	if frac < 0.6 {
		t.Fatalf("cross-machine concordance too weak: %v", frac)
	}
	if frac > 0.999 {
		t.Fatal("machines should not be identical")
	}
}

func TestProblemIntegration(t *testing.T) {
	a := haswellApp(8)
	p := a.Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	h, err := core.RunLoop(p, map[string]interface{}{"m": 10000, "n": 10000},
		core.NewGPTuner(), core.LoopOptions{Budget: 6, Seed: 3,
			Search: core.SearchOptions{Candidates: 64, DEGens: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Best(); !ok {
		t.Fatal("tuning found nothing")
	}
}

func TestPerCallNoise(t *testing.T) {
	a := haswellApp(4)
	a.NoiseSigma = 0.1
	a.PerCallNoise = true
	y1 := eval(t, a, 8000, 8000, 6, 6, 3, 16)
	y2 := eval(t, a, 8000, 8000, 6, 6, 3, 16)
	if y1 == y2 {
		t.Fatal("per-call noise should vary between repeated measurements")
	}
}
