// Package scalapack models ScaLAPACK's PDGEQRF — the distributed-memory
// blocked QR factorization tuned in Section VI-B of the paper. The
// physical runs on Cori are replaced by an analytic performance model
// over the same task parameters (matrix dimensions m, n) and tuning
// parameters (Table II: mb, nb, lg2npernode, p), evaluated against a
// machine model. The model reproduces the response-surface features the
// transfer-learning experiments rely on: interior optima in the block
// sizes, a ranks-versus-threads trade-off in lg2npernode, a process-grid
// aspect sweet spot in p, and strong correlation between tasks and
// machine configurations.
package scalapack

import (
	"fmt"
	"math"
	"sync/atomic"

	"gptunecrowd/internal/apps/noise"
	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
	"gptunecrowd/internal/space"
)

// App is a PDGEQRF simulator bound to one machine allocation.
type App struct {
	Machine machine.Machine
	// NoiseSigma is the log-normal measurement noise (default 0.03).
	NoiseSigma float64
	// Seed decorrelates noise between simulator instances.
	Seed int64
	// PerCallNoise redraws the noise on every evaluation instead of
	// fixing it per configuration — models run-to-run system noise, the
	// regime that variability detection and the RobustEvaluator target.
	PerCallNoise bool

	calls atomic.Int64
}

// New returns a PDGEQRF simulator for the given allocation.
func New(m machine.Machine) *App {
	return &App{Machine: m, NoiseSigma: 0.03}
}

// ParamSpace returns the Table II tuning space for this allocation.
func (a *App) ParamSpace() *space.Space {
	cores := a.Machine.CoresPerNode
	maxLg := int(math.Log2(float64(cores)))
	return space.MustNew(
		space.Param{Name: "mb", Kind: space.Integer, Lo: 1, Hi: 16},
		space.Param{Name: "nb", Kind: space.Integer, Lo: 1, Hi: 16},
		space.Param{Name: "lg2npernode", Kind: space.Integer, Lo: 0, Hi: float64(maxLg)},
		space.Param{Name: "p", Kind: space.Integer, Lo: 1, Hi: float64(a.Machine.Nodes * cores)},
	)
}

// TaskSpace returns the task space (matrix dimensions).
func (a *App) TaskSpace() *space.Space {
	return space.MustNew(
		space.Param{Name: "m", Kind: space.Integer, Lo: 1000, Hi: 50001},
		space.Param{Name: "n", Kind: space.Integer, Lo: 1000, Hi: 50001},
	)
}

// Problem assembles the core tuning problem.
func (a *App) Problem() *core.Problem {
	return &core.Problem{
		Name:       "PDGEQRF",
		TaskSpace:  a.TaskSpace(),
		ParamSpace: a.ParamSpace(),
		Output:     space.OutputSpace{Outputs: []space.OutputParam{{Name: "runtime", Type: "real"}}},
		Evaluator: core.EvaluatorFunc(func(task, params map[string]interface{}) (float64, error) {
			return a.Evaluate(task, params)
		}),
	}
}

// Evaluate returns the modeled runtime in seconds.
func (a *App) Evaluate(task, params map[string]interface{}) (float64, error) {
	m, ok1 := intVal(task["m"])
	n, ok2 := intVal(task["n"])
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("scalapack: task needs integer m and n")
	}
	mb, ok1 := intVal(params["mb"])
	nb, ok2 := intVal(params["nb"])
	lg, ok3 := intVal(params["lg2npernode"])
	p, ok4 := intVal(params["p"])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, fmt.Errorf("scalapack: params need integer mb, nb, lg2npernode, p")
	}
	t, err := a.runtime(m, n, mb, nb, lg, p)
	if err != nil {
		return 0, err
	}
	keys := []float64{float64(m), float64(n), float64(mb), float64(nb), float64(lg), float64(p)}
	if a.PerCallNoise {
		keys = append(keys, float64(a.calls.Add(1)))
	}
	t *= noise.Multiplier(a.Seed, a.NoiseSigma, keys...)
	return t, nil
}

// runtime is the deterministic part of the model.
func (a *App) runtime(m, n, mb, nb, lg, p int) (float64, error) {
	mach := a.Machine
	if m <= 0 || n <= 0 {
		return 0, fmt.Errorf("scalapack: non-positive matrix dims %dx%d", m, n)
	}
	ranksPerNode := 1 << uint(lg)
	if ranksPerNode > mach.CoresPerNode {
		return 0, fmt.Errorf("scalapack: %d ranks exceed %d cores per node", ranksPerNode, mach.CoresPerNode)
	}
	P := mach.Nodes * ranksPerNode
	threads := mach.CoresPerNode / ranksPerNode
	if p < 1 {
		p = 1
	}
	// Grid: p rows × q columns; ranks beyond p*q idle (the paper notes
	// idle MPI ranks are possible).
	q := P / p
	if q < 1 {
		// More row-processes than ranks: the factorization still runs on
		// a 1-column grid of min(p, P) rows, wasting nothing but badly
		// shaped.
		p = P
		q = 1
	}
	active := p * q
	rb := float64(8 * mb) // row block size
	cb := float64(8 * nb) // column block size
	mf, nf := float64(m), float64(n)
	kf := math.Min(mf, nf)

	// Useful flops of QR (m >= n form; symmetric in the min dim).
	flops := 2*mf*nf*kf - (2.0/3.0)*kf*kf*kf
	if flops < 0 {
		flops = 2 * mf * nf * kf
	}

	// Efficiency terms.
	geo := math.Sqrt(rb * cb)
	eBlas := geo / (geo + 48) // small blocks starve BLAS3
	// Load imbalance: trailing-matrix distribution granularity.
	eImb := 1 / (1 + rb*float64(p)/mf + cb*float64(q)/nf)
	// QR panels parallelize over rows; a mildly tall grid (p ≈ 2q) is
	// best, as on the real code.
	aspect := math.Abs(math.Log2(float64(p) / (2 * float64(q))))
	eGrid := 1 / (1 + 0.25*aspect)
	// Thread efficiency: intra-node BLAS threads scale sub-linearly.
	eThread := math.Pow(float64(threads), -0.12)
	rate := float64(active) * float64(threads) * mach.GFlopsPerCore * 1e9 *
		eBlas * eImb * eGrid * eThread
	tComp := flops / rate

	// Communication: one panel broadcast/reduce pair per column block.
	panels := nf / cb
	latency := mach.NetLatencyUS * 1e-6 * mach.SerialPenalty
	msgBytes := (mf/float64(p) + cb) * cb * 8
	bw := mach.NetBWGBs * 1e9
	logP := math.Log2(float64(p)) + 1
	logQ := math.Log2(float64(q)) + 1
	tComm := panels * (latency*(logP+logQ) + msgBytes/bw*logQ)

	// Panel factorization critical path (serial in the row dimension of
	// each panel): worsens with many small panels.
	tPanel := panels * (kf / float64(p)) * cb * 2 / (mach.GFlopsPerCore * 1e9 / mach.SerialPenalty)

	return tComp + tComm + tPanel, nil
}

func intVal(v interface{}) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case float64:
		return int(math.Round(x)), true
	}
	return 0, false
}
