// Package superlu models the 2-D version of SuperLU_DIST — the
// distributed sparse direct solver of the paper's first sensitivity-
// analysis case study (Section VI-D). The tuning parameters are
// [COLPERM, LOOKAHEAD, nprows, NSUP, NREL]; the cost model is built so
// the Sobol sensitivity ordering matches the paper's Table IV: COLPERM
// dominates, nprows is next, NSUP is moderate, and LOOKAHEAD and NREL
// barely matter.
package superlu

import (
	"fmt"
	"math"

	"gptunecrowd/internal/apps/noise"
	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
	"gptunecrowd/internal/space"
	"gptunecrowd/internal/sparsemodel"
)

// App is a SuperLU_DIST 2-D simulator for one matrix on one allocation.
type App struct {
	Machine    machine.Machine
	Matrix     sparsemodel.Matrix
	NoiseSigma float64
	Seed       int64
}

// New returns a simulator instance.
func New(m machine.Machine, mat sparsemodel.Matrix) *App {
	return &App{Machine: m, Matrix: mat, NoiseSigma: 0.03}
}

// Defaults returns SuperLU_DIST's default parameter values, used when a
// reduced tuning problem deactivates parameters (Fig. 6).
func Defaults() map[string]interface{} {
	return map[string]interface{}{
		"COLPERM":   "METIS_AT_PLUS_A",
		"LOOKAHEAD": 10,
		"nprows":    4,
		"NSUP":      128,
		"NREL":      20,
	}
}

// ParamSpace returns the full 5-parameter tuning space.
func (a *App) ParamSpace() *space.Space {
	maxP := a.Machine.TotalCores()
	return space.MustNew(
		space.Param{Name: "COLPERM", Kind: space.Categorical, Categories: sparsemodel.Orderings},
		space.Param{Name: "LOOKAHEAD", Kind: space.Integer, Lo: 5, Hi: 21},
		space.Param{Name: "nprows", Kind: space.Integer, Lo: 1, Hi: float64(maxP + 1)},
		space.Param{Name: "NSUP", Kind: space.Integer, Lo: 30, Hi: 300},
		space.Param{Name: "NREL", Kind: space.Integer, Lo: 10, Hi: 40},
	)
}

// Problem assembles the core tuning problem. The "task" is the matrix,
// carried by the simulator instance; the task map is accepted for
// interface compatibility and may carry a "matrix" name for records.
func (a *App) Problem() *core.Problem {
	return &core.Problem{
		Name: "SuperLU_DIST",
		TaskSpace: space.MustNew(
			space.Param{Name: "n", Kind: space.Integer, Lo: 1000, Hi: 10000001},
		),
		ParamSpace: a.ParamSpace(),
		Output:     space.OutputSpace{Outputs: []space.OutputParam{{Name: "runtime", Type: "real"}}},
		Evaluator: core.EvaluatorFunc(func(task, params map[string]interface{}) (float64, error) {
			return a.Evaluate(task, params)
		}),
	}
}

// Evaluate returns the modeled factorization+solve runtime in seconds.
func (a *App) Evaluate(_, params map[string]interface{}) (float64, error) {
	colperm, ok := params["COLPERM"].(string)
	if !ok {
		return 0, fmt.Errorf("superlu: params need string COLPERM")
	}
	la, ok1 := intVal(params["LOOKAHEAD"])
	nprows, ok2 := intVal(params["nprows"])
	nsup, ok3 := intVal(params["NSUP"])
	nrel, ok4 := intVal(params["NREL"])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, fmt.Errorf("superlu: params need integer LOOKAHEAD, nprows, NSUP, NREL")
	}
	t, err := a.runtime(colperm, la, nprows, nsup, nrel)
	if err != nil {
		return 0, err
	}
	key := []float64{float64(len(colperm)), float64(la), float64(nprows), float64(nsup), float64(nrel)}
	t *= noise.Multiplier(a.Seed, a.NoiseSigma, key...)
	return t, nil
}

func (a *App) runtime(colperm string, la, nprows, nsup, nrel int) (float64, error) {
	mach := a.Machine
	P := mach.TotalCores()
	if nprows < 1 || nprows > P {
		return 0, fmt.Errorf("superlu: nprows %d outside [1,%d]", nprows, P)
	}
	flops, err := a.Matrix.FactorFlops(colperm)
	if err != nil {
		return 0, err
	}
	npcols := P / nprows
	if npcols < 1 {
		npcols = 1
	}
	active := nprows * npcols

	// Supernode efficiency: large NSUP feeds BLAS3 but hurts balance;
	// optimum sits in the low hundreds. NREL nudges supernode detection.
	s := float64(nsup)
	eSup := (s / (s + 80)) * (1 / (1 + math.Pow(s/400, 2)))
	eRel := 1 - 0.02*math.Abs(float64(nrel)-20)/20 // ±2% effect

	// Grid aspect: sparse LU prefers nprows ≈ npcols (slightly wide).
	aspect := math.Abs(math.Log2(float64(nprows) / math.Max(1, float64(npcols))))
	eGrid := 1 / (1 + 0.35*aspect*aspect)

	rate := float64(active) * mach.GFlopsPerCore * 1e9 / mach.SerialPenalty * eSup * eRel * eGrid
	tFactor := flops / rate

	// Panel pipeline: look-ahead hides part of the communication; the
	// benefit saturates quickly (a small effect, as in Table IV).
	overlap := 0.10 * (1 - math.Exp(-float64(la)/6))
	nnzLU := flops // proportional proxy
	commVol := math.Sqrt(nnzLU) * 8 * float64(active) / mach.NetBWGBs / 1e9
	latency := mach.NetLatencyUS * 1e-6
	panels := float64(a.Matrix.N) / s
	tComm := (panels*latency*(math.Log2(float64(nprows))+math.Log2(math.Max(2, float64(npcols)))) + commVol) * (1 - overlap)

	return tFactor + tComm, nil
}

func intVal(v interface{}) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case float64:
		return int(math.Round(x)), true
	}
	return 0, false
}
