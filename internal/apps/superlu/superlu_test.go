package superlu

import (
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
	"gptunecrowd/internal/sparsemodel"
)

func app(t *testing.T) *App {
	t.Helper()
	return New(machine.CoriHaswell(4), sparsemodel.Si5H12())
}

func cfg(colperm string, la, nprows, nsup, nrel int) map[string]interface{} {
	return map[string]interface{}{
		"COLPERM": colperm, "LOOKAHEAD": la, "nprows": nprows, "NSUP": nsup, "NREL": nrel,
	}
}

func TestColpermDominates(t *testing.T) {
	a := app(t)
	a.NoiseSigma = 0
	natural, err := a.Evaluate(nil, cfg("NATURAL", 10, 8, 128, 20))
	if err != nil {
		t.Fatal(err)
	}
	metis, err := a.Evaluate(nil, cfg("METIS_AT_PLUS_A", 10, 8, 128, 20))
	if err != nil {
		t.Fatal(err)
	}
	if natural < 5*metis {
		t.Fatalf("NATURAL (%v) should be far worse than METIS (%v)", natural, metis)
	}
}

func TestLookaheadMinorEffect(t *testing.T) {
	a := app(t)
	a.NoiseSigma = 0
	lo, _ := a.Evaluate(nil, cfg("METIS_AT_PLUS_A", 5, 8, 128, 20))
	hi, _ := a.Evaluate(nil, cfg("METIS_AT_PLUS_A", 20, 8, 128, 20))
	rel := math.Abs(lo-hi) / lo
	if rel > 0.15 {
		t.Fatalf("LOOKAHEAD effect too large: %v", rel)
	}
}

func TestNprowsMatters(t *testing.T) {
	a := app(t)
	a.NoiseSigma = 0
	best := math.Inf(1)
	worst := 0.0
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		y, err := a.Evaluate(nil, cfg("METIS_AT_PLUS_A", 10, p, 128, 20))
		if err != nil {
			t.Fatal(err)
		}
		if y < best {
			best = y
		}
		if y > worst {
			worst = y
		}
	}
	if worst/best < 1.2 {
		t.Fatalf("nprows should matter: spread %v", worst/best)
	}
}

func TestH2OSlowerThanSi5H12(t *testing.T) {
	si := New(machine.CoriHaswell(4), sparsemodel.Si5H12())
	h2o := New(machine.CoriHaswell(4), sparsemodel.H2O())
	si.NoiseSigma, h2o.NoiseSigma = 0, 0
	c := cfg("METIS_AT_PLUS_A", 10, 8, 128, 20)
	ySi, _ := si.Evaluate(nil, c)
	yH, _ := h2o.Evaluate(nil, c)
	if yH <= ySi {
		t.Fatalf("H2O (larger) should be slower: %v vs %v", yH, ySi)
	}
}

func TestInvalidParams(t *testing.T) {
	a := app(t)
	if _, err := a.Evaluate(nil, cfg("WEIRD", 10, 8, 128, 20)); err == nil {
		t.Fatal("expected unknown ordering error")
	}
	if _, err := a.Evaluate(nil, cfg("NATURAL", 10, 100000, 128, 20)); err == nil {
		t.Fatal("expected nprows range error")
	}
	if _, err := a.Evaluate(nil, map[string]interface{}{"COLPERM": "NATURAL"}); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestDefaultsAreValidAndGood(t *testing.T) {
	a := app(t)
	a.NoiseSigma = 0
	d := Defaults()
	yDefault, err := a.Evaluate(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults should be competitive: better than the random-config mean.
	sp := a.ParamSpace()
	rng := rand.New(rand.NewSource(1))
	var sum float64
	for i := 0; i < 100; i++ {
		y, err := a.Evaluate(nil, sp.Decode(core.RandomPoint(sp, rng)))
		if err != nil {
			t.Fatal(err)
		}
		sum += y
	}
	if yDefault > sum/100 {
		t.Fatalf("defaults (%v) worse than random mean (%v)", yDefault, sum/100)
	}
}

func TestParamSpaceRoundTrip(t *testing.T) {
	a := app(t)
	sp := a.ParamSpace()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		u := core.RandomPoint(sp, rng)
		if _, err := a.Evaluate(nil, sp.Decode(u)); err != nil {
			t.Fatalf("decoded config must be valid: %v", err)
		}
	}
}
