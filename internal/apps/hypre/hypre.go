// Package hypre models Hypre's BoomerAMG-preconditioned GMRES solving a
// Poisson problem on a structured 3-D grid — the paper's second
// sensitivity-analysis case study (Section VI-E, Table V). The 12-
// parameter tuning space matches Table V exactly, and the cost model is
// shaped so that the Sobol indices reproduce the paper's ordering:
// smooth_type and agg_num_levels dominate, smooth_num_levels / Py /
// Nproc are moderate, and the remaining seven parameters are nearly
// inert.
package hypre

import (
	"fmt"
	"math"

	"gptunecrowd/internal/apps/noise"
	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
	"gptunecrowd/internal/space"
)

// App is a Hypre simulator bound to one machine allocation (the paper
// uses a single Cori Haswell node, 32 cores).
type App struct {
	Machine    machine.Machine
	NoiseSigma float64
	Seed       int64
}

// New returns a Hypre simulator.
func New(m machine.Machine) *App {
	return &App{Machine: m, NoiseSigma: 0.03}
}

// Categorical option lists, sized per Table V.
var (
	CoarsenTypes = []string{"CLJP", "Ruge-Stueben", "modifiedRuge-Stueben", "Falgout", "PMIS", "HMIS", "CGC", "CGC-E"}
	RelaxTypes   = []string{"Jacobi", "GS-forward", "GS-backward", "hybrid-SGS", "l1-GS", "Chebyshev"}
	SmoothTypes  = []string{"Schwarz", "Pilut", "ParaSails", "Euclid", "none"}
	InterpTypes  = []string{"classical", "LS", "hyperbolic", "direct", "multipass", "extended+i", "standard"}
)

// Defaults returns the Hypre defaults used for deactivated parameters in
// the reduced tuning problem (Fig. 7). Px, Py and Nproc have no
// meaningful defaults (the paper randomizes them).
func Defaults() map[string]interface{} {
	return map[string]interface{}{
		"strong_threshold": 0.25,
		"trunc_factor":     0.0,
		"P_max_elmts":      4,
		"coarsen_type":     "Falgout",
		"relax_type":       "hybrid-SGS",
		"interp_type":      "classical",
	}
}

// ParamSpace returns the Table V tuning space (12 parameters).
func (a *App) ParamSpace() *space.Space {
	return space.MustNew(
		space.Param{Name: "Px", Kind: space.Integer, Lo: 1, Hi: 32},
		space.Param{Name: "Py", Kind: space.Integer, Lo: 1, Hi: 32},
		space.Param{Name: "Nproc", Kind: space.Integer, Lo: 1, Hi: 32},
		space.Param{Name: "strong_threshold", Kind: space.Real, Lo: 0, Hi: 1},
		space.Param{Name: "trunc_factor", Kind: space.Real, Lo: 0, Hi: 1},
		space.Param{Name: "P_max_elmts", Kind: space.Integer, Lo: 1, Hi: 12},
		space.Param{Name: "coarsen_type", Kind: space.Categorical, Categories: CoarsenTypes},
		space.Param{Name: "relax_type", Kind: space.Categorical, Categories: RelaxTypes},
		space.Param{Name: "smooth_type", Kind: space.Categorical, Categories: SmoothTypes},
		space.Param{Name: "smooth_num_levels", Kind: space.Integer, Lo: 0, Hi: 5},
		space.Param{Name: "interp_type", Kind: space.Categorical, Categories: InterpTypes},
		space.Param{Name: "agg_num_levels", Kind: space.Integer, Lo: 0, Hi: 5},
	)
}

// TaskSpace returns the task space (grid dimensions).
func (a *App) TaskSpace() *space.Space {
	return space.MustNew(
		space.Param{Name: "nx", Kind: space.Integer, Lo: 16, Hi: 257},
		space.Param{Name: "ny", Kind: space.Integer, Lo: 16, Hi: 257},
		space.Param{Name: "nz", Kind: space.Integer, Lo: 16, Hi: 257},
	)
}

// Problem assembles the core tuning problem.
func (a *App) Problem() *core.Problem {
	return &core.Problem{
		Name:       "Hypre",
		TaskSpace:  a.TaskSpace(),
		ParamSpace: a.ParamSpace(),
		Output:     space.OutputSpace{Outputs: []space.OutputParam{{Name: "runtime", Type: "real"}}},
		Evaluator: core.EvaluatorFunc(func(task, params map[string]interface{}) (float64, error) {
			return a.Evaluate(task, params)
		}),
	}
}

// Evaluate returns the modeled setup+solve runtime in seconds.
func (a *App) Evaluate(task, params map[string]interface{}) (float64, error) {
	nx, ok1 := intVal(task["nx"])
	ny, ok2 := intVal(task["ny"])
	nz, ok3 := intVal(task["nz"])
	if !ok1 || !ok2 || !ok3 {
		return 0, fmt.Errorf("hypre: task needs integer nx, ny, nz")
	}
	px, ok1 := intVal(params["Px"])
	py, ok2 := intVal(params["Py"])
	nproc, ok3 := intVal(params["Nproc"])
	if !ok1 || !ok2 || !ok3 {
		return 0, fmt.Errorf("hypre: params need integer Px, Py, Nproc")
	}
	strong, ok1 := floatVal(params["strong_threshold"])
	trunc, ok2 := floatVal(params["trunc_factor"])
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("hypre: params need real strong_threshold, trunc_factor")
	}
	pmax, ok1 := intVal(params["P_max_elmts"])
	smoothLv, ok2 := intVal(params["smooth_num_levels"])
	aggLv, ok3 := intVal(params["agg_num_levels"])
	if !ok1 || !ok2 || !ok3 {
		return 0, fmt.Errorf("hypre: params need integer P_max_elmts, smooth_num_levels, agg_num_levels")
	}
	coarsen, ok1 := params["coarsen_type"].(string)
	relax, ok2 := params["relax_type"].(string)
	smooth, ok3 := params["smooth_type"].(string)
	interp, ok4 := params["interp_type"].(string)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, fmt.Errorf("hypre: params need categorical coarsen/relax/smooth/interp types")
	}
	t := a.runtime(nx, ny, nz, px, py, nproc, strong, trunc, pmax, coarsen, relax, smooth, interp, smoothLv, aggLv)
	t *= noise.Multiplier(a.Seed, a.NoiseSigma,
		float64(nx), float64(ny), float64(nz), float64(px), float64(py), float64(nproc),
		strong, trunc, float64(pmax), float64(len(coarsen)), float64(len(relax)),
		float64(len(smooth)), float64(smoothLv), float64(len(interp)), float64(aggLv))
	return t, nil
}

func (a *App) runtime(nx, ny, nz, px, py, nproc int, strong, trunc float64, pmax int,
	coarsen, relax, smooth, interp string, smoothLv, aggLv int) float64 {
	mach := a.Machine
	n := float64(nx) * float64(ny) * float64(nz)

	// --- Parallel resources. Nproc ranks of one node; speedup saturates
	// through memory-bandwidth contention, keeping its Sobol share
	// moderate as in Table V.
	p := float64(nproc)
	if p < 1 {
		p = 1
	}
	maxP := float64(mach.CoresPerNode)
	if p > maxP {
		p = maxP
	}
	// The solve is memory-bandwidth bound on one node, so extra ranks
	// buy little beyond a few: a compressed, saturating speedup. This
	// keeps Nproc's Sobol share moderate (ST ≈ 0.2 in Table V).
	speedup := 1 + 1.1*math.Log2(p)/5

	// Process-grid shape: the y-dimension split is the costly one for
	// this stencil layout (matching Table V, where Py matters and Px
	// does not).
	pyDev := math.Abs(math.Log2(float64(py)/4.0)) / 2
	gridEff := 1 / (1 + 1.6*pyDev)
	pxDev := math.Abs(math.Log2(float64(px)/4.0)) / 3
	gridEff *= 1 / (1 + 0.01*pxDev) // Px nearly inert
	if float64(px*py) > p {
		gridEff *= 0.97 // over-decomposed grid idles ranks
	}

	// --- AMG hierarchy: aggressive coarsening cuts operator complexity;
	// the sweet spot is 2–3 levels, after which convergence degrades.
	// Aggressive-coarsening levels cut operator complexity sharply up to
	// 2–3 levels, then convergence pushes back — a wide, convex effect
	// (ST ≈ 0.56 in Table V).
	aggMult := [5]float64{3.4, 2.0, 1.3, 1.15, 1.5}
	idx := aggLv
	if idx < 0 {
		idx = 0
	}
	if idx > 4 {
		idx = 4
	}
	opComplexity := 1.8 * aggMult[idx]
	convergencePenalty := 1.0

	// --- Smoother: the dominant driver (ST ≈ 0.7 in Table V). Complex
	// smoothers cost much more per sweep but converge a bit faster;
	// cost scales with how many levels they are applied to.
	smoothCost := map[string]float64{
		"Schwarz": 9.0, "Pilut": 4.2, "ParaSails": 2.2, "Euclid": 3.2, "none": 1.0,
	}[smooth]
	smoothConv := map[string]float64{
		"Schwarz": 0.82, "Pilut": 0.88, "ParaSails": 0.90, "Euclid": 0.86, "none": 1.0,
	}[smooth]
	lv := float64(smoothLv)
	perCycleSmooth := 1 + (smoothCost-1)*lv/3
	convFactor := math.Pow(smoothConv, math.Min(lv, 2))

	// --- Nearly-inert parameters (each ≤ a few percent).
	inert := 1.0
	inert *= 1 + 0.02*math.Abs(strong-0.25)
	inert *= 1 + 0.05*trunc // matches Table V's small trunc_factor share
	inert *= 1 + 0.01*math.Abs(float64(pmax)-4)/8
	inert *= map[string]float64{
		"CLJP": 1.02, "Ruge-Stueben": 1.01, "modifiedRuge-Stueben": 1.01,
		"Falgout": 1.0, "PMIS": 1.005, "HMIS": 1.005, "CGC": 1.015, "CGC-E": 1.015,
	}[coarsen]
	inert *= map[string]float64{
		"Jacobi": 1.02, "GS-forward": 1.0, "GS-backward": 1.0,
		"hybrid-SGS": 1.005, "l1-GS": 1.01, "Chebyshev": 1.015,
	}[relax]
	inert *= map[string]float64{
		"classical": 1.0, "LS": 1.01, "hyperbolic": 1.015, "direct": 1.01,
		"multipass": 1.005, "extended+i": 1.0, "standard": 1.005,
	}[interp]

	// --- Assemble: GMRES iterations to tolerance × per-cycle cost.
	iters := 24 * convFactor * convergencePenalty
	flopsPerCycle := n * 95 * opComplexity * perCycleSmooth
	rate := mach.GFlopsPerCore * 1e9 / mach.SerialPenalty * speedup * gridEff
	setup := n * 140 * opComplexity / rate

	return (setup + iters*flopsPerCycle/rate) * inert
}

func intVal(v interface{}) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case float64:
		return int(math.Round(x)), true
	}
	return 0, false
}

func floatVal(v interface{}) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	}
	return 0, false
}
