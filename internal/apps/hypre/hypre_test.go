package hypre

import (
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
	"gptunecrowd/internal/sensitivity"
)

func app() *App { return New(machine.CoriHaswell(1)) }

func baseCfg() map[string]interface{} {
	cfg := Defaults()
	cfg["Px"] = 4
	cfg["Py"] = 4
	cfg["Nproc"] = 16
	cfg["smooth_type"] = "none"
	cfg["smooth_num_levels"] = 0
	cfg["agg_num_levels"] = 2
	return cfg
}

func TestEvaluatePositive(t *testing.T) {
	a := app()
	task := map[string]interface{}{"nx": 100, "ny": 100, "nz": 100}
	y, err := a.Evaluate(task, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if y <= 0 || math.IsNaN(y) {
		t.Fatalf("runtime = %v", y)
	}
}

func TestSmootherDominates(t *testing.T) {
	a := app()
	a.NoiseSigma = 0
	task := map[string]interface{}{"nx": 100, "ny": 100, "nz": 100}
	cfg := baseCfg()
	cfg["smooth_num_levels"] = 4
	cfg["smooth_type"] = "none"
	fast, err := a.Evaluate(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg["smooth_type"] = "Schwarz"
	slow, err := a.Evaluate(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow < 1.5*fast {
		t.Fatalf("Schwarz at 4 levels should be much slower: %v vs %v", slow, fast)
	}
}

func TestSobolOrderingMatchesTableV(t *testing.T) {
	// The headline property: the Sobol analysis over the model must rank
	// smooth_type and agg_num_levels on top, with the seven inert
	// parameters near zero — the paper's Table V shape.
	a := app()
	a.NoiseSigma = 0
	task := map[string]interface{}{"nx": 100, "ny": 100, "nz": 100}
	sp := a.ParamSpace()
	res, err := sensitivity.AnalyzeSpace(func(cfg map[string]interface{}) float64 {
		y, err := a.Evaluate(task, cfg)
		if err != nil {
			return math.NaN()
		}
		return y
	}, sp, sensitivity.Options{N: 512, NBoot: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := map[string]float64{}
	for i, n := range res.Names {
		st[n] = res.ST[i]
	}
	if st["smooth_type"] < 0.3 {
		t.Fatalf("smooth_type ST = %v, want high", st["smooth_type"])
	}
	if st["agg_num_levels"] < 0.15 {
		t.Fatalf("agg_num_levels ST = %v, want moderate-high", st["agg_num_levels"])
	}
	for _, inert := range []string{"strong_threshold", "P_max_elmts", "coarsen_type", "relax_type", "interp_type", "Px"} {
		if st[inert] > 0.1 {
			t.Fatalf("%s ST = %v, want near zero", inert, st[inert])
		}
	}
	if st["smooth_type"] < st["Py"] || st["agg_num_levels"] < st["strong_threshold"] {
		t.Fatal("sensitivity ordering violated")
	}
}

func TestMoreProcsFasterButSaturating(t *testing.T) {
	a := app()
	a.NoiseSigma = 0
	task := map[string]interface{}{"nx": 100, "ny": 100, "nz": 100}
	cfg := baseCfg()
	cfg["Nproc"] = 1
	y1, _ := a.Evaluate(task, cfg)
	cfg["Nproc"] = 8
	y8, _ := a.Evaluate(task, cfg)
	cfg["Nproc"] = 31
	y31, _ := a.Evaluate(task, cfg)
	if y8 >= y1 {
		t.Fatalf("8 procs should beat 1: %v vs %v", y8, y1)
	}
	// Saturation: the 8→31 gain must be much smaller than the 1→8 gain.
	if (y8 - y31) > (y1-y8)*0.5 {
		t.Fatalf("speedup should saturate: 1p=%v 8p=%v 31p=%v", y1, y8, y31)
	}
}

func TestValidation(t *testing.T) {
	a := app()
	task := map[string]interface{}{"nx": 100, "ny": 100, "nz": 100}
	if _, err := a.Evaluate(map[string]interface{}{"nx": 100}, baseCfg()); err == nil {
		t.Fatal("expected task error")
	}
	bad := baseCfg()
	delete(bad, "smooth_type")
	if _, err := a.Evaluate(task, bad); err == nil {
		t.Fatal("expected param error")
	}
}

func TestRandomConfigsAllEvaluate(t *testing.T) {
	a := app()
	sp := a.ParamSpace()
	task := map[string]interface{}{"nx": 64, "ny": 64, "nz": 64}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		u := core.RandomPoint(sp, rng)
		y, err := a.Evaluate(task, sp.Decode(u))
		if err != nil {
			t.Fatalf("decoded config failed: %v", err)
		}
		if y <= 0 {
			t.Fatalf("runtime %v", y)
		}
	}
}

func TestBiggerGridSlower(t *testing.T) {
	a := app()
	a.NoiseSigma = 0
	cfg := baseCfg()
	y64, _ := a.Evaluate(map[string]interface{}{"nx": 64, "ny": 64, "nz": 64}, cfg)
	y128, _ := a.Evaluate(map[string]interface{}{"nx": 128, "ny": 128, "nz": 128}, cfg)
	if y128 <= y64 {
		t.Fatalf("bigger grid should be slower: %v vs %v", y64, y128)
	}
}
