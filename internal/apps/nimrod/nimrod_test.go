package nimrod

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
)

func task(mx, my, lphi int) map[string]interface{} {
	return map[string]interface{}{"mx": mx, "my": my, "lphi": lphi}
}

func params(nsup, nrel, nbx, nby, npz int) map[string]interface{} {
	return map[string]interface{}{"NSUP": nsup, "NREL": nrel, "nbx": nbx, "nby": nby, "npz": npz}
}

func TestBaselineScenarioRuns(t *testing.T) {
	// The paper's source task: {mx:5, my:7, lphi:1} on 32 Haswell nodes.
	a := New(machine.CoriHaswell(32))
	y, err := a.Evaluate(task(5, 7, 1), params(128, 20, 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if y <= 0 || math.IsNaN(y) {
		t.Fatalf("runtime = %v", y)
	}
}

func TestLargerTaskSlower(t *testing.T) {
	a := New(machine.CoriHaswell(64))
	a.NoiseSigma = 0
	small, err := a.Evaluate(task(5, 7, 1), params(128, 20, 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	big, err := a.Evaluate(task(6, 8, 1), params(128, 20, 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("bigger mesh should be slower: %v vs %v", small, big)
	}
}

func TestOOMFailureMode(t *testing.T) {
	// The big Fig. 5(c) task on too few nodes with fill-heavy parameters
	// must fail with an out-of-memory error.
	a := New(machine.CoriHaswell(4))
	_, err := a.Evaluate(task(6, 9, 3), params(290, 20, 1, 1, 4))
	if err == nil {
		t.Fatal("expected OOM failure")
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Frugal parameters (small supernodes, no z-replication) on a large
	// allocation must fit.
	big := New(machine.CoriHaswell(64))
	if _, err := big.Evaluate(task(6, 9, 3), params(100, 20, 1, 1, 0)); err != nil {
		t.Fatalf("frugal config on 64 nodes should fit: %v", err)
	}
}

func TestSomeConfigsFailOnTargetScenario(t *testing.T) {
	// Fig. 5(c): {mx:6, my:8} on 64 Haswell nodes has failure-prone
	// corners of the parameter space but is mostly feasible.
	a := New(machine.CoriHaswell(64))
	sp := a.ParamSpace()
	rng := rand.New(rand.NewSource(1))
	fails := 0
	for i := 0; i < 300; i++ {
		u := core.RandomPoint(sp, rng)
		if _, err := a.Evaluate(task(6, 8, 1), sp.Decode(u)); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("expected some OOM failures on the large task")
	}
	if fails > 150 {
		t.Fatalf("too many failures (%d/300): task should be mostly feasible", fails)
	}
}

func TestNpzTradeoff(t *testing.T) {
	a := New(machine.CoriHaswell(32))
	a.NoiseSigma = 0
	y0, err := a.Evaluate(task(5, 7, 1), params(128, 20, 1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	y2, err := a.Evaluate(task(5, 7, 1), params(128, 20, 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if y2 >= y0 {
		t.Fatalf("moderate z-parallelism should help: npz0=%v npz2=%v", y0, y2)
	}
}

func TestArchitectureChangesBlockingOptimum(t *testing.T) {
	// The assembly-tile sweet spot differs between Haswell and KNL,
	// giving Fig. 5(b) its "transfer across architectures" character.
	hsw := New(machine.CoriHaswell(32))
	knl := New(machine.CoriKNL(32))
	hsw.NoiseSigma, knl.NoiseSigma = 0, 0
	ratio := func(a *App) float64 {
		y11, err := a.Evaluate(task(5, 4, 1), params(128, 20, 1, 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		y22, err := a.Evaluate(task(5, 4, 1), params(128, 20, 2, 2, 2))
		if err != nil {
			t.Fatal(err)
		}
		return y22 / y11
	}
	if math.Abs(ratio(hsw)-ratio(knl)) < 1e-6 {
		t.Fatal("architectures should value blocking differently")
	}
}

func TestValidation(t *testing.T) {
	a := New(machine.CoriHaswell(8))
	if _, err := a.Evaluate(map[string]interface{}{"mx": 5}, params(100, 20, 1, 1, 1)); err == nil {
		t.Fatal("expected task validation error")
	}
	if _, err := a.Evaluate(task(5, 7, 1), map[string]interface{}{"NSUP": 100}); err == nil {
		t.Fatal("expected param validation error")
	}
}

func TestProblemIntegrationWithFailures(t *testing.T) {
	a := New(machine.CoriHaswell(64))
	p := a.Problem()
	h, err := core.RunLoop(p, task(6, 8, 1), core.NewGPTuner(),
		core.LoopOptions{Budget: 8, Seed: 2, Search: core.SearchOptions{Candidates: 64, DEGens: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 8 {
		t.Fatal("budget not consumed")
	}
	if _, ok := h.Best(); !ok {
		t.Fatal("no successful evaluation in 8 tries")
	}
}
