// Package nimrod models the NIMROD extended-MHD fusion code of the
// paper's large-scale case study (Section VI-C): a time-marching loop
// whose every step solves nonsymmetric sparse systems with block-Jacobi
// preconditioned GMRES, each Jacobi block factorized by SuperLU_DIST's
// 3-D algorithm. Task parameters (mx, my, lphi) set the mesh and
// Fourier resolution; tuning parameters are Table III's
// [NSUP, NREL, nbx, nby, npz]. The model also reproduces the paper's
// failure mode: parameter combinations that exhaust node memory return
// an out-of-memory error, which the tuner must absorb.
package nimrod

import (
	"fmt"
	"math"

	"gptunecrowd/internal/apps/noise"
	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
	"gptunecrowd/internal/space"
)

// App is a NIMROD simulator bound to one machine allocation.
type App struct {
	Machine    machine.Machine
	TimeSteps  int // default 30, as in the paper
	NoiseSigma float64
	Seed       int64
}

// New returns a NIMROD simulator.
func New(m machine.Machine) *App {
	return &App{Machine: m, TimeSteps: 30, NoiseSigma: 0.04}
}

// ParamSpace returns the Table III tuning space.
func (a *App) ParamSpace() *space.Space {
	return space.MustNew(
		space.Param{Name: "NSUP", Kind: space.Integer, Lo: 30, Hi: 300},
		space.Param{Name: "NREL", Kind: space.Integer, Lo: 10, Hi: 40},
		space.Param{Name: "nbx", Kind: space.Integer, Lo: 1, Hi: 3},
		space.Param{Name: "nby", Kind: space.Integer, Lo: 1, Hi: 3},
		space.Param{Name: "npz", Kind: space.Integer, Lo: 0, Hi: 5},
	)
}

// TaskSpace returns the task space (mesh and Fourier resolution).
func (a *App) TaskSpace() *space.Space {
	return space.MustNew(
		space.Param{Name: "mx", Kind: space.Integer, Lo: 3, Hi: 8},
		space.Param{Name: "my", Kind: space.Integer, Lo: 3, Hi: 10},
		space.Param{Name: "lphi", Kind: space.Integer, Lo: 0, Hi: 4},
	)
}

// Problem assembles the core tuning problem.
func (a *App) Problem() *core.Problem {
	return &core.Problem{
		Name:       "NIMROD",
		TaskSpace:  a.TaskSpace(),
		ParamSpace: a.ParamSpace(),
		Output:     space.OutputSpace{Outputs: []space.OutputParam{{Name: "runtime", Type: "real"}}},
		Evaluator: core.EvaluatorFunc(func(task, params map[string]interface{}) (float64, error) {
			return a.Evaluate(task, params)
		}),
	}
}

// EvaluateAtFidelity runs the time-marching loop with a reduced number
// of steps (fidelity·TimeSteps, at least 1) and reports the runtime
// extrapolated to the full step count, so objectives are comparable
// across fidelities — the multi-fidelity hook used by the bandit tuner.
func (a *App) EvaluateAtFidelity(task, params map[string]interface{}, fidelity float64) (float64, error) {
	if fidelity <= 0 || fidelity > 1 {
		return 0, fmt.Errorf("nimrod: fidelity %v outside (0,1]", fidelity)
	}
	full := a.TimeSteps
	if full <= 0 {
		full = 30
	}
	steps := int(math.Round(fidelity * float64(full)))
	if steps < 1 {
		steps = 1
	}
	sub := *a
	sub.TimeSteps = steps
	// Low-fidelity measurements are relatively noisier (fewer steps to
	// average over).
	sub.NoiseSigma = a.NoiseSigma / math.Sqrt(float64(steps)/float64(full))
	sub.Seed = a.Seed + int64(steps) // decorrelate rungs
	y, err := sub.Evaluate(task, params)
	if err != nil {
		return 0, err
	}
	return y * float64(full) / float64(steps), nil
}

// Evaluate returns the modeled main-loop runtime in seconds, or an
// error for configurations that run out of memory.
func (a *App) Evaluate(task, params map[string]interface{}) (float64, error) {
	mx, ok1 := intVal(task["mx"])
	my, ok2 := intVal(task["my"])
	lphi, ok3 := intVal(task["lphi"])
	if !ok1 || !ok2 || !ok3 {
		return 0, fmt.Errorf("nimrod: task needs integer mx, my, lphi")
	}
	nsup, ok1 := intVal(params["NSUP"])
	nrel, ok2 := intVal(params["NREL"])
	nbx, ok3 := intVal(params["nbx"])
	nby, ok4 := intVal(params["nby"])
	npz, ok5 := intVal(params["npz"])
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return 0, fmt.Errorf("nimrod: params need integer NSUP, NREL, nbx, nby, npz")
	}
	t, err := a.runtime(mx, my, lphi, nsup, nrel, nbx, nby, npz)
	if err != nil {
		return 0, err
	}
	t *= noise.Multiplier(a.Seed, a.NoiseSigma,
		float64(mx), float64(my), float64(lphi),
		float64(nsup), float64(nrel), float64(nbx), float64(nby), float64(npz))
	return t, nil
}

func (a *App) runtime(mx, my, lphi, nsup, nrel, nbx, nby, npz int) (float64, error) {
	mach := a.Machine
	steps := a.TimeSteps
	if steps <= 0 {
		steps = 30
	}
	// Problem size.
	const polyDofs = 54     // high-order finite-element dofs per cell
	const rowCoupling = 300 // nonzeros per matrix row from block coupling
	cells := float64(int(1)<<uint(mx)) * float64(int(1)<<uint(my))
	ndof := cells * polyDofs
	nmodes := float64((int(1)<<uint(lphi))/3 + 1)

	P := float64(mach.TotalCores())
	zProcs := float64(int(1) << uint(npz))
	if zProcs > P {
		return 0, fmt.Errorf("nimrod: npz=%d exceeds available ranks", npz)
	}
	p2d := math.Floor(P / zProcs)
	if p2d < 1 {
		p2d = 1
	}

	// --- Memory check (the paper's OOM failure mode). SuperLU's 3-D
	// algorithm trades memory for communication: panels are replicated
	// across the z dimension, so the factor footprint grows linearly
	// with 2^npz; large NSUP further inflates fill.
	fill := 9.0 * (1 + float64(nsup)/250.0)
	nnzA := ndof * rowCoupling * nmodes
	const factorBytes = 16  // value + index + supernode metadata
	const workspaceMult = 8 // Krylov basis, halo buffers, assembly scratch
	needGB := nnzA * fill * factorBytes * workspaceMult / 1e9 * zProcs
	if needGB > mach.TotalMemGB()*0.9 {
		return 0, fmt.Errorf("nimrod: out of memory: need %.0f GB of %.0f GB", needGB, mach.TotalMemGB())
	}

	// --- Assembly: blocking parameters tile the (x, y) loops; the sweet
	// spot depends on the cache size, i.e. on the architecture.
	bx := float64(int(1) << uint(nbx))
	by := float64(int(1) << uint(nby))
	optTile := 4.0 // Haswell-ish; weak-core machines prefer smaller tiles
	if mach.SerialPenalty > 2 {
		optTile = 2.0
	}
	tileDev := math.Abs(math.Log2(bx * by / optTile)) // 0 at the optimum
	asmEff := 1 / (1 + 0.18*tileDev)
	tAsm := ndof * nmodes * 900 / (P * mach.GFlopsPerCore * 1e9 / mach.SerialPenalty * asmEff)

	// --- Factorization (once per step for the Jacobi blocks): SuperLU
	// 3-D with supernode efficiency. The 3-D algorithm keeps all P ranks
	// computing but moves panel communication off the critical path as
	// the z dimension grows; past the sweet spot the extra reduction
	// latency across z dominates.
	s := float64(nsup)
	eSup := (s / (s + 70)) * (1 / (1 + math.Pow(s/350, 2)))
	eRel := 1 - 0.03*math.Abs(float64(nrel)-22)/22
	factorFlops := nnzA * fill * fill * float64(a.avgSupernodeRows()) // supernodal update volume
	rate := P * mach.GFlopsPerCore * 1e9 / mach.SerialPenalty * eSup * eRel
	commOverhead := 0.9*math.Log2(p2d+1)/math.Sqrt(zProcs) +
		0.12*(zProcs-1)*mach.NetLatencyUS
	tFactor := factorFlops / rate * (1 + commOverhead)

	// --- GMRES sweeps: SpMV plus block triangular solves.
	iters := 18.0
	spmvBytes := nnzA * 12
	bwAgg := float64(mach.Nodes) * mach.NetBWGBs * 1e9 * 4 // cache-aware effective bandwidth
	tSolve := iters * (spmvBytes/bwAgg + fill*nnzA*4/rate)

	perStep := tAsm + tFactor + tSolve
	return float64(steps) * perStep, nil
}

// avgSupernodeRows is a small constant factor in the supernodal flop
// model, kept as a method for future matrix-dependent refinement.
func (a *App) avgSupernodeRows() int { return 4 }

func intVal(v interface{}) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case float64:
		return int(math.Round(x)), true
	}
	return 0, false
}
