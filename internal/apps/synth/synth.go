// Package synth provides the two synthetic objective functions used in
// Section VI-A of the paper to compare transfer-learning algorithms: the
// GPTune "demo" function and the Branin function.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/space"
)

// Demo evaluates the paper's demo objective
//
//	y(t, x) = 1 + e^{−(x+1)^{t+1}} · cos(2πx) · Σ_{i=1..3} sin(2πx·(t+2)^i)
//
// with one task parameter t ∈ [0, 10) and one tuning parameter
// x ∈ [0, 1).
func Demo(t, x float64) float64 {
	s := 0.0
	for i := 1; i <= 3; i++ {
		s += math.Sin(2 * math.Pi * x * math.Pow(t+2, float64(i)))
	}
	return 1 + math.Exp(-math.Pow(x+1, t+1))*math.Cos(2*math.Pi*x)*s
}

// DemoProblem builds the demo tuning problem.
func DemoProblem() *core.Problem {
	return &core.Problem{
		Name:      "demo",
		TaskSpace: space.MustNew(space.Param{Name: "t", Kind: space.Real, Lo: 0, Hi: 10}),
		ParamSpace: space.MustNew(
			space.Param{Name: "x", Kind: space.Real, Lo: 0, Hi: 1},
		),
		Output: space.OutputSpace{Outputs: []space.OutputParam{{Name: "y", Type: "real"}}},
		Evaluator: core.EvaluatorFunc(func(task, params map[string]interface{}) (float64, error) {
			t, ok := task["t"].(float64)
			if !ok {
				return 0, fmt.Errorf("synth: demo task needs float64 %q", "t")
			}
			return Demo(t, params["x"].(float64)), nil
		}),
	}
}

// Branin evaluates the generalized Branin function
//
//	y = a(x2 − b·x1² + c·x1 − r)² + s(1 − t)·cos(x1) + s
//
// with six task parameters (a, b, c, r, s, t) and two tuning parameters
// (x1 ∈ [−5, 10], x2 ∈ [0, 15]).
func Branin(a, b, c, r, s, t, x1, x2 float64) float64 {
	d := x2 - b*x1*x1 + c*x1 - r
	return a*d*d + s*(1-t)*math.Cos(x1) + s
}

// StandardBraninTask returns the classic Branin constants.
func StandardBraninTask() map[string]interface{} {
	return map[string]interface{}{
		"a": 1.0,
		"b": 5.1 / (4 * math.Pi * math.Pi),
		"c": 5 / math.Pi,
		"r": 6.0,
		"s": 10.0,
		"t": 1 / (8 * math.Pi),
	}
}

// RandomBraninTask draws a task near the standard constants, as the
// paper does when it "randomly chooses the source and target tasks".
func RandomBraninTask(rng *rand.Rand) map[string]interface{} {
	jitter := func(v, frac float64) float64 { return v * (1 + frac*(2*rng.Float64()-1)) }
	std := StandardBraninTask()
	return map[string]interface{}{
		"a": jitter(std["a"].(float64), 0.5),
		"b": jitter(std["b"].(float64), 0.3),
		"c": jitter(std["c"].(float64), 0.3),
		"r": jitter(std["r"].(float64), 0.3),
		"s": jitter(std["s"].(float64), 0.5),
		"t": jitter(std["t"].(float64), 0.5),
	}
}

// BraninProblem builds the Branin tuning problem.
func BraninProblem() *core.Problem {
	return &core.Problem{
		Name: "branin",
		TaskSpace: space.MustNew(
			space.Param{Name: "a", Kind: space.Real, Lo: 0.5, Hi: 1.5},
			space.Param{Name: "b", Kind: space.Real, Lo: 0.05, Hi: 0.25},
			space.Param{Name: "c", Kind: space.Real, Lo: 1, Hi: 2.2},
			space.Param{Name: "r", Kind: space.Real, Lo: 4, Hi: 8},
			space.Param{Name: "s", Kind: space.Real, Lo: 5, Hi: 15},
			space.Param{Name: "t", Kind: space.Real, Lo: 0.02, Hi: 0.06},
		),
		ParamSpace: space.MustNew(
			space.Param{Name: "x1", Kind: space.Real, Lo: -5, Hi: 10},
			space.Param{Name: "x2", Kind: space.Real, Lo: 0, Hi: 15},
		),
		Output: space.OutputSpace{Outputs: []space.OutputParam{{Name: "y", Type: "real"}}},
		Evaluator: core.EvaluatorFunc(func(task, params map[string]interface{}) (float64, error) {
			get := func(k string) (float64, error) {
				v, ok := task[k].(float64)
				if !ok {
					return 0, fmt.Errorf("synth: branin task needs float64 %q", k)
				}
				return v, nil
			}
			var vals [6]float64
			for i, k := range []string{"a", "b", "c", "r", "s", "t"} {
				v, err := get(k)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			return Branin(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5],
				params["x1"].(float64), params["x2"].(float64)), nil
		}),
	}
}

// CollectSamples evaluates the problem at n random parameter
// configurations for the given task and returns the normalized points
// and objective values — how the paper builds its source datasets
// ("randomly chosen parameter configurations"). Failed evaluations are
// retried with fresh points.
func CollectSamples(p *core.Problem, task map[string]interface{}, n int, rng *rand.Rand) ([][]float64, []float64, error) {
	X := make([][]float64, 0, n)
	Y := make([]float64, 0, n)
	attempts := 0
	for len(X) < n {
		if attempts > 20*n+100 {
			return nil, nil, fmt.Errorf("synth: could not collect %d samples (too many failures)", n)
		}
		attempts++
		u := core.RandomPoint(p.ParamSpace, rng)
		y, err := p.Evaluator.Evaluate(task, p.ParamSpace.Decode(u))
		if err != nil {
			continue
		}
		X = append(X, u)
		Y = append(Y, y)
	}
	return X, Y, nil
}
