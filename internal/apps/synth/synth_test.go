package synth

import (
	"math"
	"math/rand"
	"testing"
)

func TestDemoKnownStructure(t *testing.T) {
	// The demo function equals 1 wherever the envelope or cosine term
	// vanishes; check generic sanity instead of special points: finite,
	// and varying in x.
	vals := make(map[float64]bool)
	for _, x := range []float64{0.07, 0.18, 0.33, 0.61, 0.89} {
		y := Demo(1.0, x)
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("Demo(1,%v) = %v", x, y)
		}
		vals[math.Round(y*1e6)] = true
	}
	if len(vals) < 3 {
		t.Fatal("demo function suspiciously flat")
	}
}

func TestDemoTaskChangesLandscape(t *testing.T) {
	// Different task parameters must give different landscapes (the
	// premise of transfer learning experiments).
	var diff float64
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		diff += math.Abs(Demo(0.8, x) - Demo(1.2, x))
	}
	if diff < 0.1 {
		t.Fatal("task parameter has no effect")
	}
}

func TestBraninKnownMinima(t *testing.T) {
	// Classic Branin has global minimum 0.397887 at three points.
	std := StandardBraninTask()
	f := func(x1, x2 float64) float64 {
		return Branin(std["a"].(float64), std["b"].(float64), std["c"].(float64),
			std["r"].(float64), std["s"].(float64), std["t"].(float64), x1, x2)
	}
	for _, pt := range [][2]float64{{-math.Pi, 12.275}, {math.Pi, 2.275}, {9.42478, 2.475}} {
		if v := f(pt[0], pt[1]); math.Abs(v-0.397887) > 1e-4 {
			t.Fatalf("Branin(%v) = %v, want 0.397887", pt, v)
		}
	}
}

func TestProblemsEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	demo := DemoProblem()
	task := map[string]interface{}{"t": 1.0}
	X, Y, err := CollectSamples(demo, task, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 10 || len(Y) != 10 {
		t.Fatal("sample count wrong")
	}
	branin := BraninProblem()
	_, Yb, err := CollectSamples(branin, StandardBraninTask(), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range Yb {
		if math.IsNaN(y) {
			t.Fatal("NaN objective")
		}
	}
}

func TestBraninTaskValidation(t *testing.T) {
	branin := BraninProblem()
	_, err := branin.Evaluator.Evaluate(map[string]interface{}{"a": 1.0}, map[string]interface{}{"x1": 0.0, "x2": 0.0})
	if err == nil {
		t.Fatal("expected missing-task-parameter error")
	}
}

func TestRandomBraninTaskInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		task := RandomBraninTask(rng)
		if task["a"].(float64) <= 0 || task["s"].(float64) <= 0 {
			t.Fatal("degenerate random task")
		}
	}
}
