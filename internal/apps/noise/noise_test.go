package noise

import (
	"math"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a := Multiplier(1, 0.05, 1, 2, 3)
	b := Multiplier(1, 0.05, 1, 2, 3)
	if a != b {
		t.Fatal("same inputs must give the same multiplier")
	}
}

func TestKeySensitivity(t *testing.T) {
	a := Multiplier(1, 0.05, 1, 2, 3)
	b := Multiplier(1, 0.05, 1, 2, 4)
	c := Multiplier(2, 0.05, 1, 2, 3)
	if a == b || a == c {
		t.Fatal("different keys/seeds should decorrelate")
	}
}

func TestZeroSigmaIsIdentity(t *testing.T) {
	if Multiplier(1, 0, 9, 9) != 1 {
		t.Fatal("sigma 0 must return exactly 1")
	}
}

func TestDistributionMoments(t *testing.T) {
	// Log of the multiplier should be ~N(0, σ²): check mean and spread
	// over many keys.
	const sigma = 0.1
	n := 5000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		l := math.Log(Multiplier(7, sigma, float64(i)))
		sum += l
		sumsq += l * l
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("log-mean %v, want ~0", mean)
	}
	if math.Abs(std-sigma) > 0.01 {
		t.Fatalf("log-std %v, want ~%v", std, sigma)
	}
}

func TestAlwaysPositiveFinite(t *testing.T) {
	for i := 0; i < 1000; i++ {
		m := Multiplier(int64(i), 0.5, float64(i*3), float64(-i))
		if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			t.Fatalf("bad multiplier %v", m)
		}
	}
}
