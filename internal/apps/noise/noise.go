// Package noise provides deterministic measurement noise for the
// application performance models: every (instance seed, configuration)
// pair maps to a fixed multiplicative log-normal factor, so repeated
// evaluations of the same configuration return the same "measured"
// runtime (like a quiesced machine) while different configurations and
// different simulator instances decorrelate.
package noise

import (
	"hash/fnv"
	"math"
)

// Multiplier returns exp(σ·z) where z is a standard normal deviate
// derived deterministically from seed and the key values.
func Multiplier(seed int64, sigma float64, keys ...float64) float64 {
	if sigma == 0 {
		return 1
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(seed))
	for _, k := range keys {
		put(math.Float64bits(k))
	}
	// Two 32-bit halves → Box–Muller.
	s := h.Sum64()
	u1 := (float64(s>>33) + 0.5) / float64(1<<31)
	u2 := (float64(s&0x7fffffff) + 0.5) / float64(1<<31)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(sigma * z)
}
