package apps

import (
	"testing"

	"gptunecrowd/internal/core"
)

func TestBuildAllRegisteredApps(t *testing.T) {
	for _, name := range Names() {
		inst, err := Build(name, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := inst.Problem.Validate(); err != nil {
			t.Fatalf("%s: invalid problem: %v", name, err)
		}
		if inst.Description == "" {
			t.Fatalf("%s: missing description", name)
		}
		// The default task must evaluate successfully for at least one
		// mid-space configuration.
		ps := inst.Problem.ParamSpace
		u := make([]float64, ps.Dim())
		for d := range u {
			u[d] = 0.5
		}
		u = ps.Canonicalize(u)
		if _, err := inst.Problem.Evaluator.Evaluate(inst.DefaultTask, ps.Decode(u)); err != nil {
			t.Fatalf("%s: default task mid-point evaluation failed: %v", name, err)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("fortranizer", Options{}); err == nil {
		t.Fatal("expected unknown-app error")
	}
	if _, err := Build("superlu", Options{Matrix: "Unknown"}); err == nil {
		t.Fatal("expected unknown-matrix error")
	}
}

func TestBuildOptions(t *testing.T) {
	knl, err := Build("nimrod", Options{Nodes: 16, Partition: "knl"})
	if err != nil {
		t.Fatal(err)
	}
	hsw, err := Build("nimrod", Options{Nodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Same config evaluates differently on the two partitions.
	ps := knl.Problem.ParamSpace
	u := ps.Canonicalize(make([]float64, ps.Dim()))
	cfg := ps.Decode(u)
	yk, err1 := knl.Problem.Evaluator.Evaluate(knl.DefaultTask, cfg)
	yh, err2 := hsw.Problem.Evaluator.Evaluate(hsw.DefaultTask, cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("eval errors: %v %v", err1, err2)
	}
	if yk == yh {
		t.Fatal("partitions should differ")
	}
	h2o, err := Build("superlu", Options{Matrix: "H2O"})
	if err != nil {
		t.Fatal(err)
	}
	if h2o.DefaultTask["n"].(int) != 67024 {
		t.Fatalf("H2O task = %v", h2o.DefaultTask)
	}
	_ = core.Sample{} // keep the core import for the interface check below
	var _ core.Evaluator = h2o.Problem.Evaluator
}
