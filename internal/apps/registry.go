// Package apps provides a name-indexed registry of the built-in tuning
// problems (the paper's applications plus the synthetic functions), so
// the command-line tools can address them uniformly.
package apps

import (
	"fmt"
	"sort"

	"gptunecrowd/internal/apps/hypre"
	"gptunecrowd/internal/apps/nimrod"
	"gptunecrowd/internal/apps/scalapack"
	"gptunecrowd/internal/apps/superlu"
	"gptunecrowd/internal/apps/synth"
	"gptunecrowd/internal/core"
	"gptunecrowd/internal/machine"
	"gptunecrowd/internal/sparsemodel"
)

// Instance is a constructed problem with its default task.
type Instance struct {
	Problem     *core.Problem
	DefaultTask map[string]interface{}
	Description string
}

// Options configures problem construction.
type Options struct {
	Nodes     int    // compute nodes of the allocation (app-specific default when 0)
	Partition string // "haswell" (default) or "knl"
	Matrix    string // for superlu: "Si5H12" (default) or "H2O"
	Seed      int64  // simulator noise seed
}

func (o Options) machine(defaultNodes int) machine.Machine {
	n := o.Nodes
	if n <= 0 {
		n = defaultNodes
	}
	if o.Partition == "knl" {
		return machine.CoriKNL(n)
	}
	return machine.CoriHaswell(n)
}

// Build constructs the named problem. Names returns the valid names.
func Build(name string, opts Options) (*Instance, error) {
	switch name {
	case "demo":
		return &Instance{
			Problem:     synth.DemoProblem(),
			DefaultTask: map[string]interface{}{"t": 1.0},
			Description: "GPTune demo synthetic function (1 task param, 1 tuning param)",
		}, nil
	case "branin":
		return &Instance{
			Problem:     synth.BraninProblem(),
			DefaultTask: synth.StandardBraninTask(),
			Description: "Branin synthetic function (6 task params, 2 tuning params)",
		}, nil
	case "pdgeqrf":
		app := scalapack.New(opts.machine(8))
		app.Seed = opts.Seed
		return &Instance{
			Problem:     app.Problem(),
			DefaultTask: map[string]interface{}{"m": 10000, "n": 10000},
			Description: "ScaLAPACK PDGEQRF performance model (Table II parameters)",
		}, nil
	case "nimrod":
		app := nimrod.New(opts.machine(32))
		app.Seed = opts.Seed
		return &Instance{
			Problem:     app.Problem(),
			DefaultTask: map[string]interface{}{"mx": 5, "my": 7, "lphi": 1},
			Description: "NIMROD MHD performance model (Table III parameters, OOM failures)",
		}, nil
	case "superlu":
		mat := sparsemodel.Si5H12()
		if opts.Matrix == "H2O" {
			mat = sparsemodel.H2O()
		} else if opts.Matrix != "" && opts.Matrix != "Si5H12" {
			return nil, fmt.Errorf("apps: unknown matrix %q (want Si5H12 or H2O)", opts.Matrix)
		}
		app := superlu.New(opts.machine(4), mat)
		app.Seed = opts.Seed
		return &Instance{
			Problem:     app.Problem(),
			DefaultTask: map[string]interface{}{"n": mat.N},
			Description: fmt.Sprintf("SuperLU_DIST 2D performance model on %s", mat.Name),
		}, nil
	case "hypre":
		app := hypre.New(opts.machine(1))
		app.Seed = opts.Seed
		return &Instance{
			Problem:     app.Problem(),
			DefaultTask: map[string]interface{}{"nx": 100, "ny": 100, "nz": 100},
			Description: "Hypre BoomerAMG+GMRES performance model (Table V parameters)",
		}, nil
	}
	return nil, fmt.Errorf("apps: unknown application %q (available: %v)", name, Names())
}

// Names lists the registered application names.
func Names() []string {
	names := []string{"demo", "branin", "pdgeqrf", "nimrod", "superlu", "hypre"}
	sort.Strings(names)
	return names
}
