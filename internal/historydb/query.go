package historydb

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Query is a predicate over documents. Queries form an algebra via And,
// Or and Not, and serialize to/from a compact JSON form so that clients
// can ship them to the crowd server (the paper's "SQL-like query"
// interface).
type Query interface {
	Match(Document) bool
	// json returns the wire form.
	json() map[string]interface{}
}

// Lookup resolves a dotted field path ("machine_configuration.machine_name")
// inside a document.
func Lookup(d Document, path string) (interface{}, bool) {
	cur := interface{}(d)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]interface{})
		if !ok {
			return nil, false
		}
		cur, ok = m[part]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// numeric converts JSON-ish scalars to float64 for comparison.
func numeric(v interface{}) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

// scalarEqual compares two scalars, treating all numeric types alike.
func scalarEqual(a, b interface{}) bool {
	if af, ok := numeric(a); ok {
		bf, ok2 := numeric(b)
		return ok2 && af == bf
	}
	switch av := a.(type) {
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case nil:
		return b == nil
	}
	return false
}

type eqQuery struct {
	field string
	value interface{}
}

// Eq matches documents whose field equals value.
func Eq(field string, value interface{}) Query { return eqQuery{field, value} }

func (q eqQuery) Match(d Document) bool {
	v, ok := Lookup(d, q.field)
	return ok && scalarEqual(v, q.value)
}

func (q eqQuery) json() map[string]interface{} {
	return map[string]interface{}{"op": "eq", "field": q.field, "value": q.value}
}

type rangeQuery struct {
	field  string
	lo, hi float64
}

// Range matches documents whose numeric field lies in [lo, hi].
func Range(field string, lo, hi float64) Query { return rangeQuery{field, lo, hi} }

func (q rangeQuery) Match(d Document) bool {
	v, ok := Lookup(d, q.field)
	if !ok {
		return false
	}
	f, ok := numeric(v)
	return ok && f >= q.lo && f <= q.hi
}

func (q rangeQuery) json() map[string]interface{} {
	return map[string]interface{}{"op": "range", "field": q.field, "lo": q.lo, "hi": q.hi}
}

type inQuery struct {
	field  string
	values []interface{}
}

// In matches documents whose field equals any of the values.
func In(field string, values ...interface{}) Query { return inQuery{field, values} }

func (q inQuery) Match(d Document) bool {
	v, ok := Lookup(d, q.field)
	if !ok {
		return false
	}
	for _, want := range q.values {
		if scalarEqual(v, want) {
			return true
		}
	}
	return false
}

func (q inQuery) json() map[string]interface{} {
	return map[string]interface{}{"op": "in", "field": q.field, "values": q.values}
}

type existsQuery struct{ field string }

// Exists matches documents that have the field at all.
func Exists(field string) Query { return existsQuery{field} }

func (q existsQuery) Match(d Document) bool {
	_, ok := Lookup(d, q.field)
	return ok
}

func (q existsQuery) json() map[string]interface{} {
	return map[string]interface{}{"op": "exists", "field": q.field}
}

type andQuery struct{ subs []Query }

// And matches documents matching every sub-query (vacuously true for
// zero sub-queries).
func And(subs ...Query) Query { return andQuery{subs} }

func (q andQuery) Match(d Document) bool {
	for _, s := range q.subs {
		if !s.Match(d) {
			return false
		}
	}
	return true
}

func (q andQuery) json() map[string]interface{} {
	subs := make([]interface{}, len(q.subs))
	for i, s := range q.subs {
		subs[i] = s.json()
	}
	return map[string]interface{}{"op": "and", "subs": subs}
}

type orQuery struct{ subs []Query }

// Or matches documents matching at least one sub-query (false for zero
// sub-queries).
func Or(subs ...Query) Query { return orQuery{subs} }

func (q orQuery) Match(d Document) bool {
	for _, s := range q.subs {
		if s.Match(d) {
			return true
		}
	}
	return false
}

func (q orQuery) json() map[string]interface{} {
	subs := make([]interface{}, len(q.subs))
	for i, s := range q.subs {
		subs[i] = s.json()
	}
	return map[string]interface{}{"op": "or", "subs": subs}
}

type notQuery struct{ sub Query }

// Not inverts a query.
func Not(sub Query) Query { return notQuery{sub} }

func (q notQuery) Match(d Document) bool { return !q.sub.Match(d) }

func (q notQuery) json() map[string]interface{} {
	return map[string]interface{}{"op": "not", "sub": q.sub.json()}
}

// MarshalQuery renders a query as JSON for the wire.
func MarshalQuery(q Query) ([]byte, error) {
	if q == nil {
		return []byte("null"), nil
	}
	return json.Marshal(q.json())
}

// UnmarshalQuery parses the wire form back into a Query. It returns
// (nil, nil) for JSON null (match-all).
func UnmarshalQuery(data []byte) (Query, error) {
	var raw interface{}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("historydb: bad query JSON: %w", err)
	}
	if raw == nil {
		return nil, nil
	}
	return queryFromRaw(raw)
}

func queryFromRaw(raw interface{}) (Query, error) {
	m, ok := raw.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("historydb: query node must be an object, got %T", raw)
	}
	op, _ := m["op"].(string)
	field, _ := m["field"].(string)
	switch op {
	case "eq":
		return Eq(field, m["value"]), nil
	case "range":
		lo, ok1 := numeric(m["lo"])
		hi, ok2 := numeric(m["hi"])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("historydb: range query needs numeric lo/hi")
		}
		return Range(field, lo, hi), nil
	case "in":
		vals, ok := m["values"].([]interface{})
		if !ok {
			return nil, fmt.Errorf("historydb: in query needs values array")
		}
		return In(field, vals...), nil
	case "exists":
		return Exists(field), nil
	case "and", "or":
		rawSubs, ok := m["subs"].([]interface{})
		if !ok {
			return nil, fmt.Errorf("historydb: %s query needs subs array", op)
		}
		subs := make([]Query, len(rawSubs))
		for i, rs := range rawSubs {
			q, err := queryFromRaw(rs)
			if err != nil {
				return nil, err
			}
			subs[i] = q
		}
		if op == "and" {
			return And(subs...), nil
		}
		return Or(subs...), nil
	case "not":
		sub, err := queryFromRaw(m["sub"])
		if err != nil {
			return nil, err
		}
		return Not(sub), nil
	}
	return nil, fmt.Errorf("historydb: unknown query op %q", op)
}
