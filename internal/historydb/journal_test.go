package historydb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gptunecrowd/internal/replog"
)

func snapshotBytes(t *testing.T, c *Collection) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJournalReplayMatchesLive drives a collection through inserts,
// updates and deletes with a bound log, then replays the log into a
// fresh collection and checks the result is byte-identical.
func TestJournalReplayMatchesLive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "evals-log")
	live := NewCollection("func_evals")
	lg, err := live.OpenLog(dir, "", replog.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		if _, err := live.Insert(Document{"n": i, "keep": i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := live.InsertMany([]Document{{"n": 100}, {"n": 101}}); err != nil {
		t.Fatal(err)
	}
	live.Update(Eq("n", float64(100)), func(d Document) { d["touched"] = true })
	if removed := live.Delete(Eq("keep", false)); removed != 5 {
		t.Fatalf("removed %d, want 5", removed)
	}
	if err := live.LogError(); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	restored := NewCollection("func_evals")
	lg2, err := restored.OpenLog(dir, "", replog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if !bytes.Equal(snapshotBytes(t, live), snapshotBytes(t, restored)) {
		t.Fatal("replayed collection differs from live collection")
	}
	// Ids keep advancing from the replayed watermark, no collisions.
	id, err := restored.Insert(Document{"n": 999})
	if err != nil {
		t.Fatal(err)
	}
	if id != "13" {
		t.Fatalf("next id after replay = %s, want 13", id)
	}
}

// TestJournalFollowerApply streams a leader collection's entries into a
// follower via ApplyLogRecord — with a duplicated delivery — and checks
// byte-identical convergence.
func TestJournalFollowerApply(t *testing.T) {
	leader := NewCollection("c")
	lg, err := leader.OpenLog("", "", replog.Options{}) // memory-only
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	for i := 0; i < 6; i++ {
		if _, err := leader.Insert(Document{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	leader.Update(Eq("i", float64(3)), func(d Document) { d["i"] = 33 })
	leader.Delete(Eq("i", float64(0)))

	follower := NewCollection("c")
	recs, err := lg.Entries(0, int(lg.LastIndex()))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := follower.ApplyLogRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Re-deliver the whole stream: upsert semantics make it a no-op.
	for _, rec := range recs {
		if err := follower.ApplyLogRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(snapshotBytes(t, leader), snapshotBytes(t, follower)) {
		t.Fatal("follower differs from leader after apply")
	}
}

// TestJournalCompaction folds the log to a snapshot and checks a
// replay from the compacted log still reconstructs the collection.
func TestJournalCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	c := NewCollection("c")
	lg, err := c.OpenLog(dir, "", replog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Insert(Document{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	c.Delete(Eq("i", float64(7)))
	if err := c.CompactLog(); err != nil {
		t.Fatal(err)
	}
	if n := lg.Stats().Entries; n != 0 {
		t.Fatalf("compaction left %d live entries", n)
	}
	// Mutations keep appending after compaction.
	if _, err := c.Insert(Document{"i": 999}); err != nil {
		t.Fatal(err)
	}
	if err := c.LogError(); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	r := NewCollection("c")
	lg2, err := r.OpenLog(dir, "", replog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if !bytes.Equal(snapshotBytes(t, c), snapshotBytes(t, r)) {
		t.Fatal("post-compaction replay differs")
	}
}

// TestJournalBootstrapsLegacyFile proves old SaveFile databases keep
// loading: the legacy JSONL becomes the log's base snapshot and the
// legacy file is never written again.
func TestJournalBootstrapsLegacyFile(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "func_evals.jsonl")

	old := NewCollection("func_evals")
	for i := 0; i < 5; i++ {
		if _, err := old.Insert(Document{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := old.SaveFile(legacy); err != nil {
		t.Fatal(err)
	}

	c := NewCollection("func_evals")
	lg, err := c.OpenLog(filepath.Join(dir, "log"), legacy, replog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, old), snapshotBytes(t, c)) {
		t.Fatal("bootstrap lost legacy documents")
	}
	before, _ := os.ReadFile(legacy)
	if id, err := c.Insert(Document{"i": 5}); err != nil || id != "6" {
		t.Fatalf("insert after bootstrap: id=%s err=%v", id, err)
	}
	after, _ := os.ReadFile(legacy)
	if !bytes.Equal(before, after) {
		t.Fatal("legacy file mutated after migration")
	}
	lg.Close()

	// Restart replays from the log alone (legacy file now stale).
	r := NewCollection("func_evals")
	lg2, err := r.OpenLog(filepath.Join(dir, "log"), legacy, replog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if r.Len() != 6 {
		t.Fatalf("restart has %d docs, want 6", r.Len())
	}
}

func TestJournalUnknownOpRejected(t *testing.T) {
	c := NewCollection("c")
	err := c.ApplyLogRecord(replog.Record{Index: 1, Payload: []byte(`{"op":"zap"}`)})
	if err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := c.ApplyLogRecord(replog.Record{Index: 2, Payload: []byte("{")}); err == nil {
		t.Fatal("bad payload accepted")
	}
}

// TestCompactionPreservesIDWatermark: deleting the highest-id documents
// and then compacting must not rewind the id counter — a reopened
// collection would otherwise reissue previously assigned _id values.
func TestCompactionPreservesIDWatermark(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wm-log")
	live := NewCollection("c")
	lg, err := live.OpenLog(dir, "", replog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := live.Insert(Document{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	// Documents i=3,4 hold the highest ids ("4","5"); drop them, then
	// fold the log down to a snapshot of the survivors.
	for _, i := range []float64{3, 4} {
		if removed := live.Delete(Eq("i", i)); removed != 1 {
			t.Fatalf("removed %d docs for i=%v, want 1", removed, i)
		}
	}
	if err := live.CompactLog(); err != nil {
		t.Fatal(err)
	}
	if err := live.LogError(); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	restored := NewCollection("c")
	lg2, err := restored.OpenLog(dir, "", replog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if id, err := restored.Insert(Document{"i": 99}); err != nil {
		t.Fatal(err)
	} else if id != "6" {
		t.Fatalf("id after compaction+reopen = %q, want \"6\" (watermark regressed)", id)
	}
}
