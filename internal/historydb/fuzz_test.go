package historydb

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzDocs is a small fixed corpus of documents used to compare query
// semantics before and after a wire round trip.
var fuzzDocs = []Document{
	{"tuning_problem_name": "p", "evaluation_result": 1.5, "nested": map[string]interface{}{"x": 1.0}},
	{"tuning_problem_name": "q", "evaluation_result": -3.0, "flag": true},
	{"tuning_problem_name": "p", "evaluation_result": 0.0, "tag": "a"},
	{"empty": nil},
	{},
}

// FuzzUnmarshalQuery checks that arbitrary bytes never panic the query
// parser, and that any query that does parse survives a marshal/parse
// round trip with identical match semantics.
func FuzzUnmarshalQuery(f *testing.F) {
	f.Add([]byte(`{"op":"eq","field":"tuning_problem_name","value":"p"}`))
	f.Add([]byte(`{"op":"range","field":"evaluation_result","lo":-5,"hi":1}`))
	f.Add([]byte(`{"op":"in","field":"tag","values":["a","b",1]}`))
	f.Add([]byte(`{"op":"exists","field":"nested.x"}`))
	f.Add([]byte(`{"op":"and","subs":[{"op":"eq","field":"flag","value":true},{"op":"not","sub":{"op":"exists","field":"tag"}}]}`))
	f.Add([]byte(`{"op":"or","subs":[]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"op":"range","field":"x","lo":"low","hi":3}`))
	f.Add([]byte(`{"op":"not"}`))
	f.Add([]byte(`[{"op":"eq"}]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := UnmarshalQuery(data)
		if err != nil {
			return // malformed input must error, not panic — done
		}
		wire, err := MarshalQuery(q)
		if err != nil {
			t.Fatalf("parsed query failed to marshal: %v", err)
		}
		q2, err := UnmarshalQuery(wire)
		if err != nil {
			t.Fatalf("round-tripped query %s failed to parse: %v", wire, err)
		}
		for i, d := range fuzzDocs {
			a := q == nil || q.Match(d)
			b := q2 == nil || q2.Match(d)
			if a != b {
				t.Fatalf("doc %d: match %v before round trip, %v after (query %s)", i, a, b, wire)
			}
		}
	})
}

// FuzzReadJSONL checks that arbitrary bytes never panic the persistence
// loader, and that any stream it accepts re-persists losslessly.
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte("{\"_id\":\"1\",\"x\":1}\n{\"_id\":\"2\",\"x\":2}\n"))
	f.Add([]byte("{\"x\":1}\n\n{\"y\":\"z\"}\n"))
	f.Add([]byte("{\"_id\":\"notanumber\"}\n"))
	f.Add([]byte("{\"_id\":9}\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("{}"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCollection("fuzz")
		if err := c.ReadJSONL(bytes.NewReader(data)); err != nil {
			return
		}
		n := c.Len()
		var buf strings.Builder
		if err := c.WriteJSONL(&buf); err != nil {
			t.Fatalf("loaded collection failed to serialize: %v", err)
		}
		c2 := NewCollection("fuzz2")
		if err := c2.ReadJSONL(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("re-reading own output failed: %v", err)
		}
		if c2.Len() != n {
			t.Fatalf("round trip changed document count: %d -> %d", n, c2.Len())
		}
		// The id counter must stay usable: a fresh insert may not collide
		// with a loaded id.
		id, err := c2.Insert(Document{"probe": true})
		if err != nil {
			t.Fatalf("insert after load: %v", err)
		}
		if got := c2.Count(Eq("_id", id)); got != 1 {
			t.Fatalf("id %q assigned after load matches %d documents, want 1", id, got)
		}
	})
}
