package historydb

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func sampleDocs(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection("func_eval")
	docs := []Document{
		{"machine": "Cori", "partition": "haswell", "nodes": 8, "runtime": 3.5, "user": "alice"},
		{"machine": "Cori", "partition": "knl", "nodes": 32, "runtime": 9.1, "user": "bob"},
		{"machine": "Summit", "partition": "gpu", "nodes": 4, "runtime": 1.2, "user": "alice"},
		{"machine": "Cori", "partition": "haswell", "nodes": 64, "runtime": 7.7, "user": "carol",
			"software": map[string]interface{}{"name": "scalapack", "version": "2.1.0"}},
	}
	for _, d := range docs {
		if _, err := c.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestInsertAssignsUniqueIDs(t *testing.T) {
	c := NewCollection("x")
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		id, err := c.Insert(Document{"i": i})
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestInsertIsolatesCaller(t *testing.T) {
	c := NewCollection("x")
	doc := Document{"v": 1}
	c.Insert(doc)
	doc["v"] = 999 // mutate after insert
	got, err := c.FindOne(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got["v"].(float64) != 1 {
		t.Fatal("insert did not deep-copy")
	}
	got["v"] = 888 // mutate result
	again, _ := c.FindOne(nil)
	if again["v"].(float64) != 1 {
		t.Fatal("find did not deep-copy")
	}
}

func TestQueries(t *testing.T) {
	c := sampleDocs(t)
	cases := []struct {
		q    Query
		want int
	}{
		{Eq("machine", "Cori"), 3},
		{Eq("machine", "Nope"), 0},
		{Eq("nodes", 8), 1},
		{Range("runtime", 0, 5), 2},
		{Range("nodes", 30, 70), 2},
		{In("partition", "haswell", "gpu"), 3},
		{Exists("software"), 1},
		{Eq("software.version", "2.1.0"), 1},
		{And(Eq("machine", "Cori"), Eq("partition", "haswell")), 2},
		{Or(Eq("user", "bob"), Eq("user", "carol")), 2},
		{Not(Eq("machine", "Cori")), 1},
		{And(), 4}, // vacuous truth
		{Or(), 0},
		{nil, 4},
	}
	for i, tc := range cases {
		if got := c.Count(tc.q); got != tc.want {
			t.Fatalf("case %d: Count = %d, want %d", i, got, tc.want)
		}
	}
}

func TestFindOrderAndFindOne(t *testing.T) {
	c := sampleDocs(t)
	docs, err := c.Find(Eq("machine", "Cori"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 || docs[0]["user"] != "alice" || docs[2]["user"] != "carol" {
		t.Fatal("insertion order not preserved")
	}
	one, err := c.FindOne(Eq("user", "bob"))
	if err != nil || one["partition"] != "knl" {
		t.Fatalf("FindOne = %v, %v", one, err)
	}
	none, err := c.FindOne(Eq("user", "zoe"))
	if err != nil || none != nil {
		t.Fatal("missing doc should be nil")
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	c := sampleDocs(t)
	if n := c.Delete(Eq("user", "alice")); n != 2 {
		t.Fatalf("deleted %d", n)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	n := c.Update(Eq("machine", "Cori"), func(d Document) { d["checked"] = true })
	if n != 2 {
		t.Fatalf("updated %d", n)
	}
	if c.Count(Eq("checked", true)) != 2 {
		t.Fatal("update not visible")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := sampleDocs(t)
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollection("copy")
	if err := c2.ReadJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("round trip lost docs: %d vs %d", c2.Len(), c.Len())
	}
	// IDs must not collide after reload.
	id, _ := c2.Insert(Document{"new": true})
	if c2.Count(Eq("_id", id)) != 1 {
		t.Fatal("new id after reload not unique")
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := sampleDocs(t)
	path := filepath.Join(t.TempDir(), "db.jsonl")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollection("copy")
	if err := c2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 4 {
		t.Fatalf("loaded %d docs", c2.Len())
	}
	if err := c2.LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("expected not-exist error, got %v", err)
	}
}

func TestQueryWireRoundTrip(t *testing.T) {
	q := And(
		Eq("machine", "Cori"),
		Or(Range("nodes", 1, 16), In("partition", "knl", "gpu")),
		Not(Eq("user", "bob")),
		Exists("runtime"),
	)
	data, err := MarshalQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := UnmarshalQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	c := sampleDocs(t)
	a, _ := c.Find(q)
	b, _ := c.Find(q2)
	if len(a) != len(b) {
		t.Fatalf("wire round trip changed semantics: %d vs %d", len(a), len(b))
	}
	// Null query.
	qn, err := UnmarshalQuery([]byte("null"))
	if err != nil || qn != nil {
		t.Fatal("null query should be nil")
	}
	if _, err := UnmarshalQuery([]byte(`{"op":"zap"}`)); err == nil {
		t.Fatal("expected unknown-op error")
	}
	if _, err := UnmarshalQuery([]byte(`{`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestQueryAlgebraProperty(t *testing.T) {
	// Not(Not(q)) ≡ q and De Morgan over random docs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Document{
			"a": float64(rng.Intn(5)),
			"b": fmt.Sprintf("s%d", rng.Intn(3)),
		}
		q1 := Range("a", 1, 3)
		q2 := Eq("b", "s1")
		lhs := Not(And(q1, q2)).Match(d)
		rhs := Or(Not(q1), Not(q2)).Match(d)
		if lhs != rhs {
			return false
		}
		return Not(Not(q1)).Match(d) == q1.Match(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNumericCrossTypeEquality(t *testing.T) {
	c := NewCollection("x")
	c.Insert(Document{"n": 5}) // becomes float64(5) after deep copy
	if c.Count(Eq("n", 5)) != 1 {
		t.Fatal("int query should match float64 doc")
	}
	if c.Count(Eq("n", 5.0)) != 1 {
		t.Fatal("float query should match")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	a := s.Collection("alpha")
	b := s.Collection("beta")
	if s.Collection("alpha") != a {
		t.Fatal("collection identity lost")
	}
	a.Insert(Document{"x": 1})
	if b.Len() != 0 {
		t.Fatal("collections should be independent")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "alpha" {
		t.Fatalf("Names = %v", names)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewCollection("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Insert(Document{"g": g, "i": i})
				c.Count(Eq("g", g))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 400 {
		t.Fatalf("Len = %d after concurrent inserts", c.Len())
	}
}
