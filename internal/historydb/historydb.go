// Package historydb is the storage engine of the shared performance
// database: a concurrency-safe JSON document store with a typed query
// language (the role MongoDB plays in the paper's deployment, Section
// III). Documents are arbitrary JSON objects; queries are composable
// condition trees over dotted field paths; collections persist as JSONL.
package historydb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Document is a JSON object. The store assigns each inserted document a
// unique "_id" field (a monotonically increasing integer rendered as a
// string).
type Document = map[string]interface{}

// Collection is a set of documents with insert/find/delete operations.
// All methods are safe for concurrent use.
type Collection struct {
	mu     sync.RWMutex
	name   string
	docs   []Document
	nextID int64
}

// NewCollection returns an empty collection.
func NewCollection(name string) *Collection {
	return &Collection{name: name, nextID: 1}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of stored documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Insert stores a deep copy of doc and returns its assigned id.
func (c *Collection) Insert(doc Document) (string, error) {
	cp, err := deepCopy(doc)
	if err != nil {
		return "", fmt.Errorf("historydb: insert into %s: %w", c.name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := fmt.Sprintf("%d", c.nextID)
	c.nextID++
	cp["_id"] = id
	c.docs = append(c.docs, cp)
	return id, nil
}

// Find returns deep copies of all documents matching q, in insertion
// order. A nil query matches everything.
func (c *Collection) Find(q Query) ([]Document, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Document
	for _, d := range c.docs {
		if q == nil || q.Match(d) {
			cp, err := deepCopy(d)
			if err != nil {
				return nil, err
			}
			out = append(out, cp)
		}
	}
	return out, nil
}

// FindOne returns the first match, or nil.
func (c *Collection) FindOne(q Query) (Document, error) {
	docs, err := c.Find(q)
	if err != nil || len(docs) == 0 {
		return nil, err
	}
	return docs[0], nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(q Query) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, d := range c.docs {
		if q == nil || q.Match(d) {
			n++
		}
	}
	return n
}

// Delete removes matching documents and returns how many were removed.
func (c *Collection) Delete(q Query) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.docs[:0]
	removed := 0
	for _, d := range c.docs {
		if q != nil && q.Match(d) {
			removed++
			continue
		}
		kept = append(kept, d)
	}
	c.docs = kept
	return removed
}

// Update applies fn to every matching document (in place, under the
// write lock) and returns the number updated.
func (c *Collection) Update(q Query, fn func(Document)) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, d := range c.docs {
		if q == nil || q.Match(d) {
			fn(d)
			n++
		}
	}
	return n
}

// WriteJSONL serializes the collection, one document per line.
func (c *Collection) WriteJSONL(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range c.docs {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL replaces the collection contents from a JSONL stream,
// preserving existing _id fields and advancing the id counter past them.
func (c *Collection) ReadJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var docs []Document
	maxID := int64(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d Document
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return fmt.Errorf("historydb: bad JSONL line: %w", err)
		}
		if ids, ok := d["_id"].(string); ok {
			var v int64
			fmt.Sscanf(ids, "%d", &v)
			if v > maxID {
				maxID = v
			}
		}
		docs = append(docs, d)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = docs
	c.nextID = maxID + 1
	return nil
}

// SaveFile persists the collection to path.
func (c *Collection) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteJSONL(f)
}

// LoadFile loads the collection from path.
func (c *Collection) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.ReadJSONL(f)
}

// Store is a set of named collections.
type Store struct {
	mu          sync.Mutex
	collections map[string]*Collection
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection returns (creating if needed) the named collection.
func (s *Store) Collection(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	if !ok {
		c = NewCollection(name)
		s.collections[name] = c
	}
	return c
}

// Names lists the collection names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.collections))
	for n := range s.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// deepCopy clones a document via JSON, which also normalizes numeric
// types to float64 — matching what a wire round trip would produce.
func deepCopy(d Document) (Document, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	var out Document
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return out, nil
}
