// Package historydb is the storage engine of the shared performance
// database: a concurrency-safe JSON document store with a typed query
// language (the role MongoDB plays in the paper's deployment, Section
// III). Documents are arbitrary JSON objects; queries are composable
// condition trees over dotted field paths; collections persist as JSONL.
package historydb

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"gptunecrowd/internal/replog"
)

// Document is a JSON object. The store assigns each inserted document a
// unique "_id" field (a monotonically increasing integer rendered as a
// string).
type Document = map[string]interface{}

// Collection is a set of documents with insert/find/delete operations.
// All methods are safe for concurrent use.
//
// Concurrency model: stored documents are immutable — Insert stores a
// deep copy, Update replaces a document with a mutated copy, and Delete
// rebuilds the slice. Readers therefore only need the lock long enough
// to snapshot the slice header; matching and result copying run outside
// the lock, so large scans never starve writers.
type Collection struct {
	mu     sync.RWMutex
	name   string
	docs   []Document
	nextID int64
	log    *replog.Log
	logErr error
}

// snapshot returns the current document slice. The header copy is done
// under the read lock; the documents themselves are immutable, and
// appends past the snapshot's length are invisible to it, so the caller
// may iterate without holding any lock.
func (c *Collection) snapshot() []Document {
	c.mu.RLock()
	docs := c.docs
	c.mu.RUnlock()
	return docs
}

// NewCollection returns an empty collection.
func NewCollection(name string) *Collection {
	return &Collection{name: name, nextID: 1}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of stored documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Insert stores a deep copy of doc and returns its assigned id.
func (c *Collection) Insert(doc Document) (string, error) {
	cp, err := deepCopy(doc)
	if err != nil {
		return "", fmt.Errorf("historydb: insert into %s: %w", c.name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := fmt.Sprintf("%d", c.nextID)
	c.nextID++
	cp["_id"] = id
	c.docs = append(c.docs, cp)
	c.journalLocked(logRecord{Op: "insert", Docs: []Document{cp}, NextID: c.nextID})
	return id, nil
}

// InsertMany stores deep copies of docs atomically: either every
// document is inserted (with consecutive ids, in order) or none is, and
// no concurrent reader ever observes a partially applied batch. The
// deep copies are taken before the write lock so serialization cost is
// not paid under contention.
func (c *Collection) InsertMany(docs []Document) ([]string, error) {
	cps := make([]Document, len(docs))
	for i, d := range docs {
		cp, err := deepCopy(d)
		if err != nil {
			return nil, fmt.Errorf("historydb: insert into %s: %w", c.name, err)
		}
		cps[i] = cp
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, len(cps))
	for i, cp := range cps {
		id := fmt.Sprintf("%d", c.nextID)
		c.nextID++
		cp["_id"] = id
		ids[i] = id
		c.docs = append(c.docs, cp)
	}
	if len(cps) > 0 {
		c.journalLocked(logRecord{Op: "insert", Docs: cps, NextID: c.nextID})
	}
	return ids, nil
}

// Find returns deep copies of all documents matching q, in insertion
// order. A nil query matches everything.
func (c *Collection) Find(q Query) ([]Document, error) {
	return c.FindContext(context.Background(), q)
}

// FindContext is Find with cancellation: the scan checks ctx
// periodically so an expired request deadline aborts instead of
// copying the rest of a large collection. The whole scan runs on an
// immutable snapshot, outside the collection lock.
func (c *Collection) FindContext(ctx context.Context, q Query) ([]Document, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []Document
	for i, d := range c.snapshot() {
		if i&255 == 255 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if q == nil || q.Match(d) {
			cp, err := deepCopy(d)
			if err != nil {
				return nil, err
			}
			out = append(out, cp)
		}
	}
	return out, nil
}

// FindOne returns the first match, or nil.
func (c *Collection) FindOne(q Query) (Document, error) {
	docs, err := c.Find(q)
	if err != nil || len(docs) == 0 {
		return nil, err
	}
	return docs[0], nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(q Query) int {
	n := 0
	for _, d := range c.snapshot() {
		if q == nil || q.Match(d) {
			n++
		}
	}
	return n
}

// Delete removes matching documents and returns how many were removed.
// The kept documents move to a fresh slice so concurrent snapshot
// readers keep seeing the pre-delete state.
func (c *Collection) Delete(q Query) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := make([]Document, 0, len(c.docs))
	removed := 0
	var removedIDs []string
	for _, d := range c.docs {
		if q != nil && q.Match(d) {
			removed++
			if id := docID(d); id != "" {
				removedIDs = append(removedIDs, id)
			}
			continue
		}
		kept = append(kept, d)
	}
	c.docs = kept
	if removed > 0 {
		c.journalLocked(logRecord{Op: "delete", IDs: removedIDs})
	}
	return removed
}

// Update applies fn to a copy of every matching document and swaps the
// copy in (copy-on-write), returning the number updated. Stored
// documents stay immutable, so concurrent snapshot readers see either
// the old or the new version, never a half-applied mutation.
func (c *Collection) Update(q Query, fn func(Document)) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A fresh slice, not in-place writes: outstanding snapshots share
	// the old backing array and must not observe element swaps.
	next := make([]Document, len(c.docs))
	copy(next, c.docs)
	n := 0
	var updated []Document
	for i, d := range next {
		if q == nil || q.Match(d) {
			cp, err := deepCopy(d)
			if err != nil {
				continue
			}
			fn(cp)
			next[i] = cp
			n++
			updated = append(updated, cp)
		}
	}
	c.docs = next
	if n > 0 {
		c.journalLocked(logRecord{Op: "update", Docs: updated})
	}
	return n
}

// WriteJSONL serializes the collection, one document per line. It
// serializes a snapshot, so a persistence flush never blocks traffic.
func (c *Collection) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range c.snapshot() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL replaces the collection contents from a JSONL stream,
// preserving existing _id fields and advancing the id counter past
// them. A compaction snapshot's trailing watermark record (see
// watermarkKey) restores the exact counter; streams without one —
// legacy files, pre-watermark snapshots — fall back to maxID+1.
func (c *Collection) ReadJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var docs []Document
	maxID := int64(0)
	watermark := int64(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d Document
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return fmt.Errorf("historydb: bad JSONL line: %w", err)
		}
		if v, ok := d[watermarkKey].(float64); ok && len(d) == 1 {
			if int64(v) > watermark {
				watermark = int64(v)
			}
			continue
		}
		if ids, ok := d["_id"].(string); ok {
			var v int64
			fmt.Sscanf(ids, "%d", &v)
			if v > maxID {
				maxID = v
			}
		}
		docs = append(docs, d)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = docs
	c.nextID = maxID + 1
	if watermark > c.nextID {
		c.nextID = watermark
	}
	return nil
}

// SaveFile persists the collection to path.
func (c *Collection) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.WriteJSONL(f)
}

// LoadFile loads the collection from path.
func (c *Collection) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.ReadJSONL(f)
}

// Store is a set of named collections. Each collection carries its own
// RW lock, so traffic against different collections never contends; the
// store-level lock only guards the name → collection map.
type Store struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{collections: make(map[string]*Collection)}
}

// Collection returns (creating if needed) the named collection. The
// common lookup path takes only a read lock.
func (s *Store) Collection(name string) *Collection {
	s.mu.RLock()
	c, ok := s.collections[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return c
	}
	c = NewCollection(name)
	s.collections[name] = c
	return c
}

// Names lists the collection names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.collections))
	for n := range s.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// deepCopy clones a document via JSON, which also normalizes numeric
// types to float64 — matching what a wire round trip would produce.
func deepCopy(d Document) (Document, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	var out Document
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return out, nil
}
