package historydb

// This file is the collection side of replicated persistence. Every
// mutation appends one physical logRecord — documents with their
// already-assigned _id fields plus the post-mutation id watermark — to
// a bound internal/replog log. Replay is therefore a pure upsert with
// no re-derivation: a follower applying the same records converges on a
// byte-identical collection, which is what lets the crowd repository
// shard and replicate the performance database without a consensus
// protocol inside the store itself.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gptunecrowd/internal/replog"
)

// logRecord is one replicated mutation. Insert records carry the stored
// documents (ids assigned) and the post-batch id watermark; delete
// records carry the removed ids; update records carry the full new
// versions of the changed documents.
type logRecord struct {
	Op     string     `json:"op"` // "insert" | "delete" | "update"
	Docs   []Document `json:"docs,omitempty"`
	IDs    []string   `json:"ids,omitempty"`
	NextID int64      `json:"next_id,omitempty"`
}

// watermarkKey marks the trailing metadata record a compaction snapshot
// carries (`{"<key>": <next id>}`): without it, deleting the
// highest-id documents and then compacting would rewind the id counter
// on replay to maxID+1 and reissue previously assigned _id values.
// ReadJSONL recognizes the record; snapshots without one (legacy files,
// pre-watermark logs) still load with the maxID+1 fallback.
const watermarkKey = "_historydb_next_id"

// BindLog attaches a replicated log: every subsequent mutation appends
// a physical record describing exactly what changed. Pass nil to
// detach.
func (c *Collection) BindLog(lg *replog.Log) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.log = lg
	c.logErr = nil
}

// Log returns the bound replicated log, if any.
func (c *Collection) Log() *replog.Log {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.log
}

// LogError returns the first append error the bound log produced, if
// any. Persistence failure does not block the collection; the operator
// is expected to surface this.
func (c *Collection) LogError() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.logErr
}

// journalLocked appends one mutation record to the bound log. Called
// with c.mu (write) held, so records land in mutation order. The first
// append error sticks.
func (c *Collection) journalLocked(rec logRecord) {
	if c.log == nil || c.logErr != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		_, err = c.log.Append(b)
	}
	if err != nil {
		c.logErr = fmt.Errorf("historydb: journal %s: %w", c.name, err)
	}
}

// ApplyLogRecord applies one replicated-log entry to the collection —
// the follower path, and the incremental half of ReplayLog. Records are
// physical (ids pre-assigned), so apply is deterministic: the same
// entry stream always produces the same document slice.
func (c *Collection) ApplyLogRecord(rec replog.Record) error {
	var lr logRecord
	if err := json.Unmarshal(rec.Payload, &lr); err != nil {
		return fmt.Errorf("historydb: %s log entry %d: %w", c.name, rec.Index, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch lr.Op {
	case "insert":
		// Upsert by _id so a duplicated delivery is harmless.
		for _, d := range lr.Docs {
			if i, ok := c.indexOfLocked(docID(d)); ok {
				c.replaceLocked(i, d)
			} else {
				c.docs = append(c.docs, d)
			}
		}
		if lr.NextID > c.nextID {
			c.nextID = lr.NextID
		}
	case "delete":
		drop := make(map[string]bool, len(lr.IDs))
		for _, id := range lr.IDs {
			drop[id] = true
		}
		kept := make([]Document, 0, len(c.docs))
		for _, d := range c.docs {
			if drop[docID(d)] {
				continue
			}
			kept = append(kept, d)
		}
		c.docs = kept
	case "update":
		for _, d := range lr.Docs {
			if i, ok := c.indexOfLocked(docID(d)); ok {
				c.replaceLocked(i, d)
			}
		}
	default:
		return fmt.Errorf("historydb: %s log entry %d: unknown op %q", c.name, rec.Index, lr.Op)
	}
	return nil
}

func docID(d Document) string {
	id, _ := d["_id"].(string)
	return id
}

func (c *Collection) indexOfLocked(id string) (int, bool) {
	if id == "" {
		return 0, false
	}
	for i, d := range c.docs {
		if docID(d) == id {
			return i, true
		}
	}
	return 0, false
}

// replaceLocked swaps in a new document version copy-on-write style, so
// concurrent snapshot readers never observe an element mutate.
func (c *Collection) replaceLocked(i int, d Document) {
	next := make([]Document, len(c.docs))
	copy(next, c.docs)
	next[i] = d
	c.docs = next
}

// ReplayLog replaces the collection contents from the log (snapshot
// restore plus entry-by-entry apply) and binds the log for subsequent
// mutations.
func (c *Collection) ReplayLog(lg *replog.Log) error {
	if err := lg.Replay(c.ReadJSONL, c.ApplyLogRecord); err != nil {
		return err
	}
	c.BindLog(lg)
	return nil
}

// CompactLog folds the bound log down to a single snapshot of the
// current contents. Snapshot and truncation happen under the write
// lock, so no mutation can slip between them.
func (c *Collection) CompactLog() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	return c.log.Compact(c.log.LastIndex(), func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for _, d := range c.docs {
			if err := enc.Encode(d); err != nil {
				return err
			}
		}
		// Trailing id-watermark record (see watermarkKey).
		if err := enc.Encode(map[string]int64{watermarkKey: c.nextID}); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// OpenLog opens the collection's replicated log at dir and loads the
// collection from it. When the log is empty and legacyPath names a
// pre-replog JSONL file (the SaveFile format), that file is absorbed as
// the log's base snapshot first — old on-disk databases keep loading,
// and their state becomes replicable. The returned log is bound to the
// collection; the caller closes it on shutdown.
func (c *Collection) OpenLog(dir, legacyPath string, opts replog.Options) (*replog.Log, error) {
	if opts.Name == "" {
		opts.Name = c.name
	}
	lg, err := replog.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if !lg.HasState() && legacyPath != "" {
		f, err := os.Open(legacyPath)
		if err == nil {
			berr := lg.Bootstrap(f)
			f.Close()
			if berr != nil {
				lg.Close()
				return nil, fmt.Errorf("historydb: bootstrap %s from %s: %w", c.name, legacyPath, berr)
			}
		} else if !os.IsNotExist(err) {
			lg.Close()
			return nil, err
		}
	}
	if err := c.ReplayLog(lg); err != nil {
		lg.Close()
		return nil, err
	}
	return lg, nil
}
