// Package gp implements exact Gaussian-process regression: the surrogate
// performance model at the heart of the Bayesian-optimization tuner.
// Targets are standardized internally; hyperparameters (ARD length
// scales, signal variance, noise variance) are fitted by multi-start
// L-BFGS on the exact negative log marginal likelihood with analytic
// gradients.
package gp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gptunecrowd/internal/kernel"
	"gptunecrowd/internal/linalg"
	"gptunecrowd/internal/optimize"
	"gptunecrowd/internal/parallel"
)

// ErrNoData is returned when fitting with zero observations.
var ErrNoData = errors.New("gp: no training data")

// Options configures a GP fit.
type Options struct {
	Kernel      kernel.Type // covariance family (default Matern52)
	Categorical []bool      // per-dimension categorical flags (Hamming distance)
	Restarts    int         // multi-start count (default 2; 0 means default)
	MaxIter     int         // L-BFGS iterations per start (default 60)
	Seed        int64       // RNG seed for restarts
	FixedNoise  float64     // if > 0, fixes the noise *standard deviation* (standardized units)
	// Workers bounds the parallelism of the fit (restart fan-out, kernel
	// matrix assembly, gradient reduction). <= 0 means the engine default:
	// GPTUNE_WORKERS when set, else GOMAXPROCS. Results are bit-identical
	// for every worker count at a fixed Seed.
	Workers int
	// Ctx, when non-nil, allows cancelling the fit between restarts: a
	// restart that begins after cancellation is skipped and Fit returns
	// the context's error instead of a model. A nil Ctx never cancels.
	Ctx context.Context
}

// GP is a fitted Gaussian-process model.
type GP struct {
	kern   *kernel.Kernel
	hyper  *kernel.Hyper
	lnoise float64 // log noise variance (standardized units)

	x     [][]float64
	ys    []float64 // standardized targets, kept for incremental updates
	alpha []float64
	chol  *linalg.Cholesky

	meanY, stdY float64
	nll         float64
	observed    int // Observe calls since the last full factorization

	// predictPool recycles per-call prediction buffers so that Predict is
	// both allocation-light and safe to call from many goroutines.
	predictPool sync.Pool
}

// predictScratch holds the reusable buffers of one Predict call.
type predictScratch struct {
	ks, v, tmp []float64
}

// hyperparameter box (log space, standardized targets, unit-cube inputs).
var (
	logLenLo, logLenHi     = math.Log(0.01), math.Log(100.0)
	logVarLo, logVarHi     = math.Log(1e-6), math.Log(1e4)
	logNoiseLo, logNoiseHi = math.Log(1e-8), math.Log(1.0)
)

// Fit trains a GP on inputs X (rows in the unit hypercube) and targets y.
func Fit(X [][]float64, y []float64, opts Options) (*GP, error) {
	n := len(X)
	if n == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", n, len(y))
	}
	if err := checkFinite(X, y); err != nil {
		return nil, err
	}
	dim := len(X[0])
	if opts.Restarts <= 0 {
		opts.Restarts = 2
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 60
	}
	if opts.Kernel == kernel.Auto {
		opts.Kernel = kernel.Matern52
	}
	// Standardize targets.
	var mean, sd float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	for _, v := range y {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(n))
	if sd < 1e-12 {
		sd = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - mean) / sd
	}

	kern := &kernel.Kernel{Type: opts.Kernel, Dim: dim, Categorical: opts.Categorical}
	g := &GP{kern: kern, x: X, meanY: mean, stdY: sd}

	np := dim + 2 // log lengths, log var, log noise var
	// Start points are drawn up-front from a single seeded stream, so the
	// restart fan-out below cannot perturb them.
	rng := rand.New(rand.NewSource(opts.Seed))
	starts := make([][]float64, 0, opts.Restarts)
	base := make([]float64, np)
	base[dim] = 0                // log var = 0 (unit signal on standardized data)
	base[dim+1] = math.Log(1e-3) // modest noise floor
	starts = append(starts, base)
	for len(starts) < opts.Restarts {
		s := make([]float64, np)
		for d := 0; d < dim; d++ {
			s[d] = math.Log(0.05) + rng.Float64()*(math.Log(2)-math.Log(0.05))
		}
		s[dim] = rng.NormFloat64() * 0.3
		s[dim+1] = math.Log(1e-4) + rng.Float64()*math.Log(1e3)
		starts = append(starts, s)
	}

	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return nil, opts.Ctx.Err()
	}

	// Restarts run concurrently; each gets private scratch so objective
	// evaluations never contend, and the argmin reduction is ordered.
	best := optimize.MultiStartParallel(starts, opts.Workers, func(_ int, x0 []float64) optimize.Result {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			// Cancelled before this restart began: report an unusable
			// result so the argmin ignores it (Fit re-checks below).
			return optimize.Result{X: x0, F: math.Inf(1)}
		}
		sc := newFitScratch(dim, n)
		obj := func(theta []float64) (float64, []float64) {
			return g.nllGrad(ys, theta, opts.FixedNoise, opts.Workers, sc)
		}
		return optimize.LBFGS(obj, x0, optimize.LBFGSConfig{MaxIter: opts.MaxIter})
	})
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return nil, opts.Ctx.Err()
	}

	g.hyper = kernel.NewHyper(dim)
	g.hyper.Unpack(best.X[:dim+1])
	g.lnoise = clamp(best.X[dim+1], logNoiseLo, logNoiseHi)
	if opts.FixedNoise > 0 {
		g.lnoise = math.Log(opts.FixedNoise * opts.FixedNoise)
	}
	clampHyper(g.hyper)
	g.nll = best.F
	if err := g.factorize(ys); err != nil {
		return nil, err
	}
	return g, nil
}

// FitFixed builds a GP with the given hyperparameters without any
// optimization — used by tests and by surrogate stacking, where the
// residual model reuses a known scale.
func FitFixed(X [][]float64, y []float64, kern *kernel.Kernel, hyper *kernel.Hyper, noiseVar float64) (*GP, error) {
	n := len(X)
	if n == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", n, len(y))
	}
	if err := checkFinite(X, y); err != nil {
		return nil, err
	}
	var mean, sd float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	for _, v := range y {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(n))
	if sd < 1e-12 {
		sd = 1
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - mean) / sd
	}
	g := &GP{kern: kern, hyper: hyper, lnoise: math.Log(math.Max(noiseVar, 1e-10)), x: X, meanY: mean, stdY: sd}
	if err := g.factorize(ys); err != nil {
		return nil, err
	}
	return g, nil
}

// checkFinite rejects ragged or non-finite training data — crowd-fed
// histories can carry NaN/Inf that would silently poison the Cholesky.
func checkFinite(X [][]float64, y []float64) error {
	dim := len(X[0])
	for i, x := range X {
		if len(x) != dim {
			return fmt.Errorf("gp: input %d has dimension %d, want %d", i, len(x), dim)
		}
		for j, c := range x {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("gp: input %d coordinate %d is not finite (%v)", i, j, c)
			}
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("gp: target %d is not finite (%v)", i, v)
		}
	}
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampHyper(h *kernel.Hyper) {
	for d := range h.LogLength {
		h.LogLength[d] = clamp(h.LogLength[d], logLenLo, logLenHi)
	}
	h.LogVar = clamp(h.LogVar, logVarLo, logVarHi)
}

// fitScratch holds the buffers one optimizer run reuses across
// objective evaluations: the kernel Gram matrix and its per-parameter
// derivative matrices dominate the fit loop's allocation churn.
type fitScratch struct {
	h   *kernel.Hyper
	K   *linalg.Matrix
	dKs []*linalg.Matrix
}

func newFitScratch(dim, n int) *fitScratch {
	sc := &fitScratch{h: kernel.NewHyper(dim), K: linalg.NewMatrix(n, n)}
	sc.dKs = make([]*linalg.Matrix, dim+1)
	for p := range sc.dKs {
		sc.dKs[p] = linalg.NewMatrix(n, n)
	}
	return sc
}

// nllGrad evaluates the penalized negative log marginal likelihood and
// its gradient with respect to theta = [logLen..., logVar, logNoiseVar].
// The returned gradient slice is freshly allocated (the L-BFGS driver
// retains it across iterations); all large intermediates live in sc,
// which must be private to the calling goroutine.
func (g *GP) nllGrad(ys []float64, theta []float64, fixedNoise float64, workers int, sc *fitScratch) (float64, []float64) {
	dim := g.kern.Dim
	n := len(ys)
	h := sc.h
	h.Unpack(theta[:dim+1])
	logNoise := theta[dim+1]
	if fixedNoise > 0 {
		logNoise = math.Log(fixedNoise * fixedNoise)
	}
	grad := make([]float64, dim+2)

	// Box penalty keeps L-BFGS inside sane hyperparameter ranges.
	penalty := 0.0
	pen := func(idx int, v, lo, hi float64) float64 {
		const w = 10
		if v < lo {
			penalty += w * (lo - v) * (lo - v)
			grad[idx] += -2 * w * (lo - v)
		} else if v > hi {
			penalty += w * (v - hi) * (v - hi)
			grad[idx] += 2 * w * (v - hi)
		}
		return v
	}
	for d := 0; d < dim; d++ {
		pen(d, theta[d], logLenLo, logLenHi)
	}
	pen(dim, theta[dim], logVarLo, logVarHi)
	pen(dim+1, logNoise, logNoiseLo, logNoiseHi)

	K, dKs := sc.K, sc.dKs
	g.kern.MatrixGradsInto(g.x, h, K, dKs, workers)
	noiseVar := math.Exp(logNoise)
	K.AddDiag(noiseVar)
	ch, err := linalg.NewCholesky(K)
	if err != nil {
		// Not PD even with jitter: reject the point.
		return math.Inf(1), grad
	}
	alpha := ch.SolveVec(ys)
	nll := 0.5*linalg.Dot(ys, alpha) + 0.5*ch.LogDet() + 0.5*float64(n)*math.Log(2*math.Pi)

	Kinv := ch.InverseWorkers(workers)
	// d nll/dθ = 0.5·tr(K⁻¹ dK) − 0.5·αᵀ dK α. Parameters are
	// independent, so the reduction fans out over p; within one p the
	// summation order is fixed, and both Kinv and dK are symmetric, so
	// only the upper triangle is visited.
	parallel.For(dim+1, workers, func(p int) {
		dK := dKs[p]
		var tr, quad float64
		for i := 0; i < n; i++ {
			rowK := Kinv.Row(i)
			rowD := dK.Row(i)
			ai := alpha[i]
			var trOff, quadOff float64
			for j := i + 1; j < n; j++ {
				trOff += rowK[j] * rowD[j]
				quadOff += rowD[j] * alpha[j]
			}
			tr += rowK[i]*rowD[i] + 2*trOff
			quad += ai * (rowD[i]*ai + 2*quadOff)
		}
		grad[p] += 0.5*tr - 0.5*quad
	})
	// Noise gradient: dK/dlogNoiseVar = noiseVar·I.
	if fixedNoise <= 0 {
		var trInv, aa float64
		for i := 0; i < n; i++ {
			trInv += Kinv.At(i, i)
			aa += alpha[i] * alpha[i]
		}
		grad[dim+1] += 0.5 * noiseVar * (trInv - aa)
	} else {
		grad[dim+1] = 0
	}
	return nll + penalty, grad
}

func (g *GP) factorize(ys []float64) error {
	K := g.kern.Matrix(g.x, g.hyper)
	K.AddDiag(math.Exp(g.lnoise))
	ch, err := linalg.NewCholesky(K)
	if err != nil {
		return fmt.Errorf("gp: covariance factorization failed: %w", err)
	}
	g.chol = ch
	g.ys = ys
	g.alpha = ch.SolveVec(ys)
	g.observed = 0
	n := len(g.x)
	g.predictPool.New = func() interface{} {
		return &predictScratch{ks: make([]float64, n), v: make([]float64, n), tmp: make([]float64, n)}
	}
	return nil
}

// scratch fetches a prediction scratch sized for n training rows. Pooled
// buffers are grown in place when Observe has extended the model past
// the size they were created with.
func (g *GP) scratch(n int) *predictScratch {
	sc := g.predictPool.Get().(*predictScratch)
	if cap(sc.ks) < n {
		sc.ks = make([]float64, n)
		sc.v = make([]float64, n)
		sc.tmp = make([]float64, n)
	}
	sc.ks = sc.ks[:n]
	sc.v = sc.v[:n]
	sc.tmp = sc.tmp[:n]
	return sc
}

// Dim returns the input dimension.
func (g *GP) Dim() int { return g.kern.Dim }

// NumSamples returns the number of training observations.
func (g *GP) NumSamples() int { return len(g.x) }

// NLL returns the fitted (penalized) negative log marginal likelihood.
func (g *GP) NLL() float64 { return g.nll }

// Hyper returns the fitted hyperparameters (shared storage).
func (g *GP) Hyper() *kernel.Hyper { return g.hyper }

// NoiseVar returns the fitted noise variance in standardized units.
func (g *GP) NoiseVar() float64 { return math.Exp(g.lnoise) }

// Predict returns the posterior mean and standard deviation of the
// latent function at x, in the original target units. It is safe for
// concurrent use; per-call buffers come from an internal pool.
func (g *GP) Predict(x []float64) (mean, std float64) {
	n := len(g.x)
	sc := g.scratch(n)
	defer g.predictPool.Put(sc)
	ks := sc.ks
	for i := 0; i < n; i++ {
		ks[i] = g.kern.Eval(x, g.x[i], g.hyper)
	}
	mu := linalg.Dot(ks, g.alpha)
	g.chol.SolveVecInto(ks, sc.v, sc.tmp)
	variance := g.kern.Diag(g.hyper) - linalg.Dot(ks, sc.v)
	if variance < 1e-12 {
		variance = 1e-12
	}
	return g.meanY + g.stdY*mu, g.stdY * math.Sqrt(variance)
}

// PredictMean returns only the posterior mean at x.
func (g *GP) PredictMean(x []float64) float64 {
	n := len(g.x)
	sc := g.scratch(n)
	defer g.predictPool.Put(sc)
	ks := sc.ks
	for i := 0; i < n; i++ {
		ks[i] = g.kern.Eval(x, g.x[i], g.hyper)
	}
	return g.meanY + g.stdY*linalg.Dot(ks, g.alpha)
}

// PredictBatch evaluates Predict over many points with the default
// worker count.
func (g *GP) PredictBatch(X [][]float64) (means, stds []float64) {
	return g.PredictBatchWorkers(X, 0)
}

// PredictBatchWorkers evaluates Predict over many points with an
// explicit worker count (<= 0 means the engine default). Each output
// slot is written by exactly one worker, so results are bit-identical
// for every worker count.
func (g *GP) PredictBatchWorkers(X [][]float64, workers int) (means, stds []float64) {
	means = make([]float64, len(X))
	stds = make([]float64, len(X))
	g.PredictBatchInto(X, means, stds, workers)
	return means, stds
}

// PredictBatchInto is PredictBatchWorkers writing into caller-owned
// slices (len(X) each) — the allocation-flat form used by the suggest
// hot path. Each output slot is written by exactly one worker, so
// results are bit-identical for every worker count.
func (g *GP) PredictBatchInto(X [][]float64, means, stds []float64, workers int) {
	if len(means) != len(X) || len(stds) != len(X) {
		panic(fmt.Sprintf("gp: PredictBatchInto output length %d/%d, want %d", len(means), len(stds), len(X)))
	}
	parallel.For(len(X), workers, func(i int) {
		means[i], stds[i] = g.Predict(X[i])
	})
}

// TrainingInputs exposes the training rows (shared storage).
func (g *GP) TrainingInputs() [][]float64 { return g.x }
