package gp

import (
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/kernel"
)

// testFunc is a smooth 2-D surface used as the ground truth.
func testFunc(x []float64) float64 {
	return math.Sin(3*x[0]) + 0.5*math.Cos(5*x[1]) + x[0]*x[1]
}

func makeObserveData(n int, rng *rand.Rand) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = testFunc(X[i]) + 0.01*rng.NormFloat64()
	}
	return X, y
}

// TestObserveMatchesFullRefactorization is the exact equivalence claim:
// after k incremental Observe calls, the posterior must match a full
// O(n³) refactorization of the appended data under the same frozen
// hyperparameters and target standardization to 1e-8.
func TestObserveMatchesFullRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := makeObserveData(40, rng)
	g, err := Fit(X, y, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	extraX, extraY := makeObserveData(8, rng)
	for i, x := range extraX {
		if err := g.Observe(x, extraY[i]); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
	}
	if got := g.ObservedSinceFit(); got != len(extraX) {
		t.Fatalf("ObservedSinceFit = %d, want %d", got, len(extraX))
	}
	if got := g.NumSamples(); got != 48 {
		t.Fatalf("NumSamples = %d, want 48", got)
	}

	// Reference: full refactorization with the frozen mean/std/hypers.
	m, s := g.Standardization()
	allX := make([][]float64, 0, 48)
	allX = append(allX, X...)
	allX = append(allX, extraX...)
	ysAll := make([]float64, 0, 48)
	for _, v := range y {
		ysAll = append(ysAll, (v-m)/s)
	}
	for _, v := range extraY {
		ysAll = append(ysAll, (v-m)/s)
	}
	ref := &GP{kern: g.kern, hyper: g.hyper, lnoise: g.lnoise, x: allX, meanY: m, stdY: s}
	if err := ref.factorize(ysAll); err != nil {
		t.Fatal(err)
	}

	const tol = 1e-8
	probe := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := []float64{probe.Float64(), probe.Float64()}
		gm, gs := g.Predict(x)
		rm, rs := ref.Predict(x)
		if math.Abs(gm-rm) > tol || math.Abs(gs-rs) > tol {
			t.Fatalf("probe %d: incremental (%.12f, %.12f) vs full (%.12f, %.12f)", i, gm, gs, rm, rs)
		}
	}
}

// TestObserveCloseToFreshFitFixed checks the operational tolerance: the
// incremental posterior with frozen standardization stays close to a
// fresh FitFixed (which re-standardizes from scratch) on the appended
// data. The two differ only through the prior-mean anchor drifting with
// the sample mean, which is the bounded error the periodic full refit
// caps.
func TestObserveCloseToFreshFitFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	X, y := makeObserveData(50, rng)
	g, err := Fit(X, y, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	extraX, extraY := makeObserveData(10, rng)
	for i, x := range extraX {
		if err := g.Observe(x, extraY[i]); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
	}

	allX := append(append([][]float64{}, X...), extraX...)
	allY := append(append([]float64{}, y...), extraY...)
	fresh, err := FitFixed(allX, allY, g.kern, g.Hyper(), g.NoiseVar())
	if err != nil {
		t.Fatal(err)
	}
	probe := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		x := []float64{probe.Float64(), probe.Float64()}
		gm, gs := g.Predict(x)
		fm, fs := fresh.Predict(x)
		if math.Abs(gm-fm) > 0.05 || math.Abs(gs-fs) > 0.05 {
			t.Fatalf("probe %d: incremental (%.6f, %.6f) drifted past 0.05 from fresh FitFixed (%.6f, %.6f)", i, gm, gs, fm, fs)
		}
	}
}

// TestObserveRefitResynchronizes emulates the caller contract: once
// ObservedSinceFit reaches the refit period K, a full Fit on the
// appended data resets the counter and resynchronizes the posterior
// with a from-scratch fit of the same data.
func TestObserveRefitResynchronizes(t *testing.T) {
	const refitEvery = 4
	rng := rand.New(rand.NewSource(17))
	X, y := makeObserveData(30, rng)
	g, err := Fit(X, y, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	curX := append([][]float64{}, X...)
	curY := append([]float64{}, y...)
	refits := 0
	for i := 0; i < 8; i++ {
		px, py := []float64{rng.Float64(), rng.Float64()}, 0.0
		py = testFunc(px) + 0.01*rng.NormFloat64()
		curX = append(curX, px)
		curY = append(curY, py)
		if err := g.Observe(px, py); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
		if g.ObservedSinceFit() >= refitEvery {
			g, err = Fit(curX, curY, Options{Seed: 1})
			if err != nil {
				t.Fatalf("refit %d: %v", i, err)
			}
			refits++
			if g.ObservedSinceFit() != 0 {
				t.Fatalf("ObservedSinceFit = %d after full refit, want 0", g.ObservedSinceFit())
			}
		}
	}
	if refits != 2 {
		t.Fatalf("refit trigger fired %d times over 8 observations with K=%d, want 2", refits, refitEvery)
	}
	// The loop ends exactly on a refit boundary, so the resynchronized
	// model must be bit-identical to a fresh fit of the same data.
	want, err := Fit(curX, curY, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	probe := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		x := []float64{probe.Float64(), probe.Float64()}
		gm, gs := g.Predict(x)
		wm, ws := want.Predict(x)
		if gm != wm || gs != ws {
			t.Fatalf("probe %d: post-refit posterior (%v, %v) != fresh fit (%v, %v)", i, gm, gs, wm, ws)
		}
	}
}

// TestObserveErrorsLeaveModelUnchanged covers the failure contract.
func TestObserveErrorsLeaveModelUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	X, y := makeObserveData(20, rng)
	g, err := Fit(X, y, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	probeX := []float64{0.3, 0.7}
	m0, s0 := g.Predict(probeX)
	cases := []struct {
		x []float64
		y float64
	}{
		{[]float64{0.1}, 1},                // wrong dimension
		{[]float64{0.1, math.NaN()}, 1},    // non-finite input
		{[]float64{0.1, 0.2}, math.Inf(1)}, // non-finite target
		{[]float64{0.1, 0.2}, math.NaN()},  // NaN target
	}
	for i, c := range cases {
		if err := g.Observe(c.x, c.y); err == nil {
			t.Fatalf("case %d: Observe accepted bad input", i)
		}
	}
	if g.NumSamples() != 20 || g.ObservedSinceFit() != 0 {
		t.Fatalf("failed Observe mutated the model: n=%d observed=%d", g.NumSamples(), g.ObservedSinceFit())
	}
	m1, s1 := g.Predict(probeX)
	if m0 != m1 || s0 != s1 {
		t.Fatal("failed Observe changed predictions")
	}
	var unfitted GP
	unfitted.kern = &kernel.Kernel{Type: kernel.Matern52, Dim: 2}
	if err := unfitted.Observe([]float64{0.1, 0.2}, 1); err == nil {
		t.Fatal("Observe on an unfitted model succeeded")
	}
}
