package gp

import (
	"encoding/json"
	"fmt"
	"math"

	"gptunecrowd/internal/kernel"
)

// ModelData is the portable form of a fitted GP: everything needed to
// reconstruct predictions exactly (training inputs, raw targets, kernel
// family and hyperparameters). This is what the shared database stores
// for "pre-trained surrogate performance models of source tasks"
// (Section V-A-1 of the paper).
type ModelData struct {
	Kernel      string      `json:"kernel"`
	Dim         int         `json:"dim"`
	Categorical []bool      `json:"categorical,omitempty"`
	LogLength   []float64   `json:"log_length"`
	LogVar      float64     `json:"log_var"`
	LogNoise    float64     `json:"log_noise"`
	X           [][]float64 `json:"x"`
	Y           []float64   `json:"y"`
}

// Export captures the fitted model. The Y values are reconstructed in
// original units from the standardized targets.
func (g *GP) Export() *ModelData {
	n := len(g.x)
	// The GP stores alpha = K⁻¹·ys rather than the targets themselves,
	// so recover them as ys = (K_f + σ²I)·alpha and de-standardize.
	ys := make([]float64, n)
	K := g.kern.Matrix(g.x, g.hyper)
	K.AddDiag(g.NoiseVar())
	for i := 0; i < n; i++ {
		row := K.Row(i)
		var s float64
		for j := 0; j < n; j++ {
			s += row[j] * g.alpha[j]
		}
		ys[i] = g.meanY + g.stdY*s
	}
	X := make([][]float64, n)
	for i, x := range g.x {
		X[i] = append([]float64(nil), x...)
	}
	return &ModelData{
		Kernel:      g.kern.Type.String(),
		Dim:         g.kern.Dim,
		Categorical: append([]bool(nil), g.kern.Categorical...),
		LogLength:   append([]float64(nil), g.hyper.LogLength...),
		LogVar:      g.hyper.LogVar,
		LogNoise:    g.lnoise,
		X:           X,
		Y:           ys,
	}
}

// Restore rebuilds a GP from exported data (refactorizing the
// covariance; no hyperparameter optimization).
func Restore(d *ModelData) (*GP, error) {
	if d == nil || len(d.X) == 0 {
		return nil, fmt.Errorf("gp: empty model data")
	}
	if len(d.X) != len(d.Y) {
		return nil, fmt.Errorf("gp: model data has %d inputs but %d targets", len(d.X), len(d.Y))
	}
	kt, err := kernel.ParseType(d.Kernel)
	if err != nil {
		return nil, err
	}
	if len(d.LogLength) != d.Dim {
		return nil, fmt.Errorf("gp: %d length scales for dim %d", len(d.LogLength), d.Dim)
	}
	kern := &kernel.Kernel{Type: kt, Dim: d.Dim, Categorical: d.Categorical}
	hyper := &kernel.Hyper{LogLength: append([]float64(nil), d.LogLength...), LogVar: d.LogVar}
	// FitFixed standardizes internally, reproducing the original scale
	// handling; LogNoise is in standardized units already.
	g := &GP{kern: kern, hyper: hyper, lnoise: d.LogNoise, x: d.X, meanY: 0, stdY: 1}
	// Standardize exactly as Fit does.
	var mean, sd float64
	for _, v := range d.Y {
		mean += v
	}
	mean /= float64(len(d.Y))
	for _, v := range d.Y {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(d.Y)))
	if sd < 1e-12 {
		sd = 1
	}
	g.meanY, g.stdY = mean, sd
	ys := make([]float64, len(d.Y))
	for i, v := range d.Y {
		ys[i] = (v - mean) / sd
	}
	if err := g.factorize(ys); err != nil {
		return nil, err
	}
	return g, nil
}

// MarshalJSON serializes the fitted model.
func (g *GP) MarshalJSON() ([]byte, error) { return json.Marshal(g.Export()) }

// FromJSON reconstructs a model serialized with MarshalJSON.
func FromJSON(data []byte) (*GP, error) {
	var d ModelData
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("gp: bad model JSON: %w", err)
	}
	return Restore(&d)
}
