package gp

import (
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/kernel"
)

func gridX(n int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(i) / float64(n-1)}
	}
	return X
}

func TestFitRecoversSmoothFunction(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
	X := gridX(20)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = f(x[0])
	}
	g, err := Fit(X, y, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Check interpolation quality away from the training grid.
	for _, x := range []float64{0.13, 0.42, 0.77} {
		mean, std := g.Predict([]float64{x})
		if math.Abs(mean-f(x)) > 0.05 {
			t.Fatalf("predict(%v) = %v, want ~%v", x, mean, f(x))
		}
		if std < 0 {
			t.Fatalf("negative std %v", std)
		}
	}
}

func TestPredictNearTrainingPointIsExact(t *testing.T) {
	X := gridX(10)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 3*x[0] + 1
	}
	g, err := Fit(X, y, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		mean, _ := g.Predict(x)
		if math.Abs(mean-y[i]) > 0.05 {
			t.Fatalf("training point %d: %v vs %v", i, mean, y[i])
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	X := [][]float64{{0.4}, {0.45}, {0.5}, {0.55}, {0.6}}
	y := []float64{1, 1.1, 1.2, 1.1, 1}
	g, err := Fit(X, y, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, stdNear := g.Predict([]float64{0.5})
	_, stdFar := g.Predict([]float64{0.0})
	if stdFar <= stdNear {
		t.Fatalf("std should grow away from data: near=%v far=%v", stdNear, stdFar)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("expected ErrNoData")
	}
	if _, err := Fit([][]float64{{0}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := Fit([][]float64{{0}, {1, 2}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
	if _, err := Fit([][]float64{{0}}, []float64{math.NaN()}, Options{}); err == nil {
		t.Fatal("expected non-finite target error")
	}
	if _, err := Fit([][]float64{{0}, {math.Inf(1)}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected non-finite input error")
	}
	if _, err := Fit([][]float64{{math.NaN()}}, []float64{1}, Options{}); err == nil {
		t.Fatal("expected NaN input error")
	}
	// Crowd-fed histories are the source of these values; Fit must
	// return a recoverable error (the degradation path's trigger), never
	// panic or produce a poisoned model.
}

func TestFitSingleSample(t *testing.T) {
	g, err := Fit([][]float64{{0.5, 0.5}}, []float64{42}, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mean, std := g.Predict([]float64{0.5, 0.5})
	if math.Abs(mean-42) > 1 {
		t.Fatalf("single-sample mean %v", mean)
	}
	if std < 0 {
		t.Fatal("negative std")
	}
}

func TestFitConstantTargets(t *testing.T) {
	X := gridX(5)
	y := []float64{7, 7, 7, 7, 7}
	g, err := Fit(X, y, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := g.Predict([]float64{0.3})
	if math.Abs(mean-7) > 0.5 {
		t.Fatalf("constant prediction %v", mean)
	}
}

func TestNoisyFitSmooths(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 40
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		y[i] = x*x + rng.NormFloat64()*0.05
	}
	g, err := Fit(X, y, Options{Seed: 6, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		mean, _ := g.Predict([]float64{x})
		mse += (mean - x*x) * (mean - x*x)
	}
	if mse/5 > 0.01 {
		t.Fatalf("noisy fit MSE %v too high", mse/5)
	}
	if g.NoiseVar() <= 0 {
		t.Fatal("noise variance should be positive")
	}
}

func TestKernelOptionRespected(t *testing.T) {
	X := gridX(8)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = x[0]
	}
	for _, kt := range []kernel.Type{kernel.RBF, kernel.Matern32, kernel.Matern52} {
		g, err := Fit(X, y, Options{Kernel: kt, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", kt, err)
		}
		mean, _ := g.Predict([]float64{0.5})
		if math.Abs(mean-0.5) > 0.1 {
			t.Fatalf("%v: predict(0.5) = %v", kt, mean)
		}
	}
}

func TestCategoricalDimension(t *testing.T) {
	// Two categories with different levels; GP must separate them.
	X := [][]float64{
		{0.1, 0.25}, {0.5, 0.25}, {0.9, 0.25}, // category A (code 0.25)
		{0.1, 0.75}, {0.5, 0.75}, {0.9, 0.75}, // category B (code 0.75)
	}
	y := []float64{1, 1, 1, 5, 5, 5}
	g, err := Fit(X, y, Options{Categorical: []bool{false, true}, Seed: 8, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := g.Predict([]float64{0.3, 0.25})
	mb, _ := g.Predict([]float64{0.3, 0.75})
	if math.Abs(ma-1) > 0.8 || math.Abs(mb-5) > 0.8 {
		t.Fatalf("categorical separation failed: %v / %v", ma, mb)
	}
}

func TestFitFixed(t *testing.T) {
	X := gridX(6)
	y := []float64{0, 1, 2, 3, 4, 5}
	kern := kernel.New(kernel.RBF, 1)
	h := kernel.NewHyper(1)
	h.LogLength[0] = math.Log(0.3)
	g, err := FitFixed(X, y, kern, h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := g.Predict([]float64{0.2})
	if math.Abs(mean-1) > 0.3 {
		t.Fatalf("FitFixed predict %v", mean)
	}
	if g.NumSamples() != 6 || g.Dim() != 1 {
		t.Fatal("metadata wrong")
	}
	if _, err := FitFixed(X, y[:3], kern, h, 1e-6); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	bad := append(append([][]float64(nil), X[:5]...), []float64{math.NaN()})
	if _, err := FitFixed(bad, y, kern, h, 1e-6); err == nil {
		t.Fatal("expected non-finite input error")
	}
}

func TestPredictBatchAgreesWithPredict(t *testing.T) {
	X := gridX(10)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = math.Cos(3 * x[0])
	}
	g, err := Fit(X, y, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q := [][]float64{{0.1}, {0.6}, {0.95}}
	means, stds := g.PredictBatch(q)
	for i, x := range q {
		m, s := g.Predict(x)
		if m != means[i] || s != stds[i] {
			t.Fatal("batch/single mismatch")
		}
	}
	if pm := g.PredictMean(q[1]); math.Abs(pm-means[1]) > 1e-12 {
		t.Fatal("PredictMean mismatch")
	}
}

func TestFixedNoiseOption(t *testing.T) {
	X := gridX(10)
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = x[0]
	}
	g, err := Fit(X, y, Options{Seed: 10, FixedNoise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.NoiseVar()-0.01) > 1e-12 {
		t.Fatalf("fixed noise not honored: %v", g.NoiseVar())
	}
}

func TestNLLGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, dim := 12, 2
	X := make([][]float64, n)
	ys := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = rng.NormFloat64()
	}
	g := &GP{kern: kernel.New(kernel.Matern52, dim), x: X}
	theta := []float64{math.Log(0.4), math.Log(0.8), 0.2, math.Log(1e-2)}
	sc := newFitScratch(dim, n)
	_, grad := g.nllGrad(ys, theta, 0, 1, sc)
	const eps = 1e-6
	for p := range theta {
		tp := append([]float64(nil), theta...)
		tp[p] += eps
		fp, _ := g.nllGrad(ys, tp, 0, 1, sc)
		tp[p] -= 2 * eps
		fm, _ := g.nllGrad(ys, tp, 0, 1, sc)
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-grad[p]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", p, grad[p], num)
		}
	}
}
