package gp

// Clone returns an independent copy of the fitted model: the clone can
// absorb Observe updates (e.g. constant-liar pseudo-observations while
// generating a batch of suggestions) without disturbing the original,
// which may be serving concurrent Predict calls the whole time.
//
// The kernel and hyperparameters are shared — Observe never mutates
// them — and the training rows are shared with pinned capacity, so an
// append on either model copies instead of aliasing. The Cholesky
// factor and alpha are deep-copied: incremental updates replace them in
// place.
func (g *GP) Clone() *GP {
	c := &GP{
		kern:     g.kern,
		hyper:    g.hyper,
		lnoise:   g.lnoise,
		x:        g.x[:len(g.x):len(g.x)],
		ys:       g.ys[:len(g.ys):len(g.ys)],
		alpha:    append([]float64(nil), g.alpha...),
		meanY:    g.meanY,
		stdY:     g.stdY,
		nll:      g.nll,
		observed: g.observed,
	}
	if g.chol != nil {
		c.chol = g.chol.Clone()
	}
	n := len(c.x)
	c.predictPool.New = func() interface{} {
		return &predictScratch{ks: make([]float64, n), v: make([]float64, n), tmp: make([]float64, n)}
	}
	return c
}
