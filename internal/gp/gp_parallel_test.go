package gp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func fitFixture(n, dim int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		X[i] = x
		Y[i] = x[0]*x[0] + math.Sin(3*x[dim-1]) + 0.05*rng.NormFloat64()
	}
	return X, Y
}

// The determinism guarantee of the parallel engine: at a fixed seed the
// fitted hyperparameters and predictions are bit-identical whether the
// fit runs on 1 worker or 8.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	X, Y := fitFixture(40, 3, 21)
	ref, err := Fit(X, Y, Options{Seed: 5, Restarts: 4, MaxIter: 25, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		g, err := Fit(X, Y, Options{Seed: 5, Restarts: 4, MaxIter: 25, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if g.NLL() != ref.NLL() {
			t.Fatalf("workers=%d: NLL %v vs %v", w, g.NLL(), ref.NLL())
		}
		for d, v := range g.Hyper().LogLength {
			if v != ref.Hyper().LogLength[d] {
				t.Fatalf("workers=%d: LogLength[%d] %v vs %v", w, d, v, ref.Hyper().LogLength[d])
			}
		}
		if g.Hyper().LogVar != ref.Hyper().LogVar || g.NoiseVar() != ref.NoiseVar() {
			t.Fatalf("workers=%d: variance params differ", w)
		}
		x := []float64{0.31, 0.62, 0.93}
		m1, s1 := ref.Predict(x)
		m2, s2 := g.Predict(x)
		if m1 != m2 || s1 != s2 {
			t.Fatalf("workers=%d: prediction differs: (%v,%v) vs (%v,%v)", w, m1, s1, m2, s2)
		}
	}
}

func TestPredictBatchWorkersBitIdentical(t *testing.T) {
	X, Y := fitFixture(30, 2, 9)
	g, err := Fit(X, Y, Options{Seed: 1, Restarts: 1, MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	P, _ := fitFixture(64, 2, 10)
	refM, refS := g.PredictBatchWorkers(P, 1)
	for _, w := range []int{2, 8} {
		m, s := g.PredictBatchWorkers(P, w)
		for i := range refM {
			if m[i] != refM[i] || s[i] != refS[i] {
				t.Fatalf("workers=%d: point %d differs", w, i)
			}
		}
	}
}

// Predict must be callable from many goroutines at once (the parallel
// acquisition search depends on it); the race detector patrols this.
func TestPredictConcurrentSafe(t *testing.T) {
	X, Y := fitFixture(25, 2, 13)
	g, err := Fit(X, Y, Options{Seed: 2, Restarts: 1, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := g.Predict([]float64{0.5, 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m, s := g.Predict([]float64{0.5, 0.5})
				if m != want || s <= 0 {
					panic("concurrent Predict diverged")
				}
				g.PredictMean([]float64{0.1, 0.9})
			}
		}()
	}
	wg.Wait()
}
