package gp

import (
	"fmt"
	"math"
)

// Observe appends one observation (x, y) to the fitted model with an
// incremental O(n²) posterior update: the covariance factor is extended
// by one bordered row (linalg.Cholesky.AppendRow) and alpha is re-solved
// against the stored standardized targets. Hyperparameters and the
// target standardization are frozen at their last-fit values, so the
// posterior is exactly the one a full FitFixed on the appended data
// would produce under those frozen choices — callers bound the drift of
// the frozen choices themselves by scheduling periodic full refits
// (ObservedSinceFit reports how overdue one is).
//
// Observe mutates the model and is NOT safe to call concurrently with
// Predict or with itself; the suggest service serializes it behind a
// write lock. On error (dimension mismatch, non-finite input, loss of
// positive definiteness) the model is unchanged and the caller should
// fall back to a full refit.
func (g *GP) Observe(x []float64, y float64) error {
	if g.chol == nil {
		return ErrNoData
	}
	dim := g.kern.Dim
	if len(x) != dim {
		return fmt.Errorf("gp: Observe input has dimension %d, want %d", len(x), dim)
	}
	for j, c := range x {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("gp: Observe input coordinate %d is not finite (%v)", j, c)
		}
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("gp: Observe target is not finite (%v)", y)
	}

	n := len(g.x)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = g.kern.Eval(x, g.x[i], g.hyper)
	}
	d := g.kern.Diag(g.hyper) + math.Exp(g.lnoise)
	if err := g.chol.AppendRow(ks, d); err != nil {
		return fmt.Errorf("gp: incremental update lost positive definiteness: %w", err)
	}

	// Append copies under fixed capacity so the grown model never aliases
	// caller storage or a slice shared with a snapshot of the old model.
	xc := append([]float64(nil), x...)
	g.x = append(g.x[:n:n], xc)
	g.ys = append(g.ys[:n:n], (y-g.meanY)/g.stdY)
	g.alpha = g.chol.SolveVec(g.ys)
	g.observed++
	return nil
}

// ObservedSinceFit returns the number of incremental Observe updates
// absorbed since the last full factorization (Fit, FitFixed, Restore).
func (g *GP) ObservedSinceFit() int { return g.observed }

// Standardization returns the frozen target standardization (mean,
// standard deviation) the model predicts through.
func (g *GP) Standardization() (mean, std float64) { return g.meanY, g.stdY }

// TrainingTargets exposes the standardized training targets (shared
// storage; do not mutate).
func (g *GP) TrainingTargets() []float64 { return g.ys }
