package gp

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/kernel"
)

func fittedModel(t *testing.T) *GP {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 25
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x := []float64{rng.Float64(), rng.Float64()}
		X[i] = x
		Y[i] = 3*math.Sin(4*x[0]) + x[1] + 10
	}
	g, err := Fit(X, Y, Options{Seed: 2, Kernel: kernel.Matern52})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExportRestoreRoundTrip(t *testing.T) {
	g := fittedModel(t)
	g2, err := Restore(g.Export())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		m1, s1 := g.Predict(x)
		m2, s2 := g2.Predict(x)
		if math.Abs(m1-m2) > 1e-6*(1+math.Abs(m1)) {
			t.Fatalf("mean mismatch at %v: %v vs %v", x, m1, m2)
		}
		if math.Abs(s1-s2) > 1e-6*(1+s1) {
			t.Fatalf("std mismatch at %v: %v vs %v", x, s1, s2)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := fittedModel(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.6}
	m1, _ := g.Predict(x)
	m2, _ := g2.Predict(x)
	if math.Abs(m1-m2) > 1e-6*(1+math.Abs(m1)) {
		t.Fatalf("JSON round trip changed predictions: %v vs %v", m1, m2)
	}
}

func TestRestoreValidation(t *testing.T) {
	if _, err := Restore(nil); err == nil {
		t.Fatal("nil data should fail")
	}
	if _, err := Restore(&ModelData{}); err == nil {
		t.Fatal("empty data should fail")
	}
	bad := fittedModel(t).Export()
	bad.Y = bad.Y[:1]
	if _, err := Restore(bad); err == nil {
		t.Fatal("length mismatch should fail")
	}
	bad2 := fittedModel(t).Export()
	bad2.Kernel = "spline"
	if _, err := Restore(bad2); err == nil {
		t.Fatal("unknown kernel should fail")
	}
	bad3 := fittedModel(t).Export()
	bad3.LogLength = bad3.LogLength[:1]
	if _, err := Restore(bad3); err == nil {
		t.Fatal("length-scale mismatch should fail")
	}
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Fatal("bad JSON should fail")
	}
}

func TestExportPreservesCategorical(t *testing.T) {
	X := [][]float64{{0.1, 0.25}, {0.5, 0.75}, {0.9, 0.25}, {0.3, 0.75}}
	Y := []float64{1, 5, 1, 5}
	g, err := Fit(X, Y, Options{Categorical: []bool{false, true}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Restore(g.Export())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g2.Predict([]float64{0.4, 0.25})
	b, _ := g2.Predict([]float64{0.4, 0.75})
	if math.Abs(a-b) < 0.5 {
		t.Fatalf("categorical structure lost: %v vs %v", a, b)
	}
}
