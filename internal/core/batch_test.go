package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gptunecrowd/internal/space"
)

func TestRunLoopBatchConsumesBudget(t *testing.T) {
	p := quadProblem(t)
	h, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{Budget: 11, BatchSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 11 {
		t.Fatalf("budget: %d", h.Len())
	}
	if _, ok := h.Best(); !ok {
		t.Fatal("no best")
	}
}

func TestRunLoopBatchProposesDistinctPoints(t *testing.T) {
	// Constant-liar batching must not propose the same point several
	// times in one round.
	p := quadProblem(t)
	h, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{Budget: 8, BatchSize: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]float64]int{}
	for _, s := range h.Samples {
		key := [2]float64{s.ParamU[0], s.ParamU[1]}
		seen[key]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("point %v proposed %d times", k, n)
		}
	}
}

func TestRunLoopBatchActuallyParallel(t *testing.T) {
	ps := space.MustNew(space.Param{Name: "x", Kind: space.Real, Lo: 0, Hi: 1})
	var inFlight, maxInFlight int64
	p := &Problem{
		Name:       "slow",
		ParamSpace: ps,
		Evaluator: EvaluatorFunc(func(_, params map[string]interface{}) (float64, error) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&maxInFlight)
				if cur <= old || atomic.CompareAndSwapInt64(&maxInFlight, old, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return params["x"].(float64), nil
		}),
	}
	_, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{Budget: 8, BatchSize: 4, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&maxInFlight) < 2 {
		t.Fatalf("max in-flight = %d, want >= 2", maxInFlight)
	}
}

func TestRunLoopBatchDeterministicOrder(t *testing.T) {
	p := quadProblem(t)
	run := func() []float64 {
		h, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{Budget: 9, BatchSize: 3, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, h.Len())
		for i, s := range h.Samples {
			out[i] = s.Y
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunLoopBatchFailuresRecorded(t *testing.T) {
	ps := space.MustNew(space.Param{Name: "x", Kind: space.Real, Lo: 0, Hi: 1})
	var n int64
	p := &Problem{
		Name:       "flaky",
		ParamSpace: ps,
		Evaluator: EvaluatorFunc(func(_, params map[string]interface{}) (float64, error) {
			if atomic.AddInt64(&n, 1)%3 == 0 {
				return 0, errors.New("oom")
			}
			return params["x"].(float64), nil
		}),
	}
	h, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{Budget: 9, BatchSize: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 9 {
		t.Fatal("failures must consume budget")
	}
	if h.NumOK() != 6 {
		t.Fatalf("NumOK = %d", h.NumOK())
	}
}

func TestRunLoopBatchValidation(t *testing.T) {
	p := quadProblem(t)
	if _, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{}); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestOnSampleOrderInBatch(t *testing.T) {
	p := quadProblem(t)
	next := 0
	_, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{
		Budget: 6, BatchSize: 3, Seed: 6,
		OnSample: func(i int, s Sample) {
			if i != next {
				t.Fatalf("callback out of order: %d want %d", i, next)
			}
			next++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 6 {
		t.Fatalf("callbacks fired %d times", next)
	}
}
