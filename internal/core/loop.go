package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gptunecrowd/internal/obs"
)

// Proposer suggests the next tuning-parameter point given the target
// task's evaluation history. The plain GP tuner and every TLA algorithm
// implement this interface.
type Proposer interface {
	// Name identifies the algorithm (e.g. "NoTLA", "Multitask(TS)").
	Name() string
	// Propose returns the next normalized (canonical) point to evaluate.
	Propose(ctx *ProposeContext) ([]float64, error)
}

// ProposeContext carries everything a proposer may need.
type ProposeContext struct {
	Problem *Problem
	Task    map[string]interface{}
	History *History
	Rng     *rand.Rand
	Iter    int // 0-based evaluation index
	Budget  int // total evaluation budget (0 when the driver has none)
	Search  SearchOptions

	// Stats, when non-nil, accumulates the session's robustness
	// counters (fit failures survived, space-filling fallbacks, robust
	// ingestion gauges). Proposers report through the helpers below.
	Stats *RobustStats
	// Logf, when non-nil, receives degradation log lines.
	Logf func(format string, args ...interface{})

	// Ctx, when non-nil, allows cancelling a proposal between its
	// stages (before the surrogate fit, between fit and acquisition
	// search). Proposers check it with Cancelled; a nil Ctx never
	// cancels.
	Ctx context.Context
	// Timers, when non-nil, receives per-stage durations (surrogate
	// fit, acquisition search). All methods are nil-safe.
	Timers *Timers
}

// Cancelled returns the context's error when the proposal should stop,
// nil otherwise (including when no context was supplied).
func (ctx *ProposeContext) Cancelled() error {
	if ctx.Ctx == nil {
		return nil
	}
	return ctx.Ctx.Err()
}

// DegradeToSpaceFill records that a surrogate fit failed and the
// proposer is answering this iteration with space-filling sampling
// instead of aborting the session, then draws the fallback point.
func (ctx *ProposeContext) DegradeToSpaceFill(proposer string, fitErr error) []float64 {
	if ctx.Stats != nil {
		ctx.Stats.FitFailures++
		ctx.Stats.SpaceFill++
	}
	if ctx.Logf != nil {
		ctx.Logf("%s: surrogate fit failed at iteration %d, degrading to space-filling sampling: %v",
			proposer, ctx.Iter, fitErr)
	}
	return ctx.RandomFeasible()
}

// NoteRobustIngestion records what the robust sample filter did before
// the current fit.
func (ctx *ProposeContext) NoteRobustIngestion(info RobustInfo) {
	if ctx.Stats != nil {
		ctx.Stats.LastOutliers = int64(info.Outliers)
		ctx.Stats.LastImputed = int64(info.Imputed)
	}
	if ctx.Logf != nil && (info.Outliers > 0 || info.NonFinite > 0) {
		ctx.Logf("robust ingestion at iteration %d: kept %d, excluded %d outliers, imputed %d failures, dropped %d non-finite",
			ctx.Iter, info.OK, info.Outliers, info.Imputed, info.NonFinite)
	}
}

// RandomFeasible draws a random canonical point satisfying the
// problem's constraints (falling back to an unconstrained draw after
// many rejections, so a badly specified constraint cannot hang the
// loop).
func (ctx *ProposeContext) RandomFeasible() []float64 {
	sp := ctx.Problem.ParamSpace
	for i := 0; i < 256; i++ {
		u := RandomPoint(sp, ctx.Rng)
		if ctx.Search.Feasible == nil || ctx.Search.Feasible(u) {
			return u
		}
	}
	return RandomPoint(sp, ctx.Rng)
}

// LoopOptions configures one tuning run.
type LoopOptions struct {
	Budget int   // NS, the number of function evaluations
	Seed   int64 // RNG seed; runs are deterministic given the seed
	Search SearchOptions
	// OnSample, when set, observes every evaluation as it lands.
	OnSample func(i int, s Sample)
	// Metrics, when non-nil, receives the tuner_* stage histograms
	// (fit, search, propose, evaluate durations).
	Metrics *obs.Registry
}

// RunLoop executes the iterative tuning loop: propose → evaluate →
// record, for Budget evaluations. Failed evaluations are recorded and
// count against the budget but are invisible to surrogate fits (the
// History.XY accessor skips them).
func RunLoop(p *Problem, task map[string]interface{}, proposer Proposer, opts LoopOptions) (*History, error) {
	return RunLoopContext(context.Background(), p, task, proposer, opts)
}

// RunLoopContext is RunLoop with cooperative cancellation: the context
// is checked before every iteration and between proposal stages, and
// cancellation returns the history accumulated so far alongside the
// context's error.
func RunLoopContext(rctx context.Context, p *Problem, task map[string]interface{}, proposer Proposer, opts LoopOptions) (*History, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("core: non-positive budget %d", opts.Budget)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	h := &History{}
	timers := NewTimers(opts.Metrics)
	search := opts.Search
	if len(p.Constraints) > 0 {
		search.Feasible = func(u []float64) bool {
			return p.Feasible(task, p.ParamSpace.Decode(u))
		}
	}
	for i := 0; i < opts.Budget; i++ {
		if err := rctx.Err(); err != nil {
			return h, fmt.Errorf("core: tuning loop cancelled at iteration %d: %w", i, err)
		}
		ctx := &ProposeContext{
			Problem: p,
			Task:    task,
			History: h,
			Rng:     rng,
			Iter:    i,
			Budget:  opts.Budget,
			Search:  search,
			Ctx:     rctx,
			Timers:  timers,
		}
		proposeStart := time.Now()
		u, err := proposer.Propose(ctx)
		timers.ObservePropose(time.Since(proposeStart))
		if err != nil {
			return h, fmt.Errorf("core: proposer %s failed at iteration %d: %w", proposer.Name(), i, err)
		}
		if len(u) != p.ParamSpace.Dim() {
			return h, fmt.Errorf("core: proposer %s returned a %d-dim point, want %d", proposer.Name(), len(u), p.ParamSpace.Dim())
		}
		u = p.ParamSpace.Canonicalize(u)
		params := p.ParamSpace.Decode(u)
		s := Sample{ParamU: u, Params: params, Proposer: proposer.Name()}
		evalStart := time.Now()
		y, err := p.Evaluator.Evaluate(task, params)
		timers.ObserveEvaluate(time.Since(evalStart))
		switch {
		case err != nil:
			s.Failed = true
			s.Err = err.Error()
		case math.IsNaN(y) || math.IsInf(y, 0):
			// Mirror Session.Observe: a non-finite objective is recorded
			// as a failure so it can never reach a surrogate fit.
			s.Failed = true
			s.Err = fmt.Sprintf("non-finite objective %v", y)
		default:
			s.Y = y
		}
		h.Append(s)
		if opts.OnSample != nil {
			opts.OnSample(i, s)
		}
	}
	return h, nil
}
