package core

import (
	"fmt"
	"math/rand"
)

// Proposer suggests the next tuning-parameter point given the target
// task's evaluation history. The plain GP tuner and every TLA algorithm
// implement this interface.
type Proposer interface {
	// Name identifies the algorithm (e.g. "NoTLA", "Multitask(TS)").
	Name() string
	// Propose returns the next normalized (canonical) point to evaluate.
	Propose(ctx *ProposeContext) ([]float64, error)
}

// ProposeContext carries everything a proposer may need.
type ProposeContext struct {
	Problem *Problem
	Task    map[string]interface{}
	History *History
	Rng     *rand.Rand
	Iter    int // 0-based evaluation index
	Search  SearchOptions
}

// RandomFeasible draws a random canonical point satisfying the
// problem's constraints (falling back to an unconstrained draw after
// many rejections, so a badly specified constraint cannot hang the
// loop).
func (ctx *ProposeContext) RandomFeasible() []float64 {
	sp := ctx.Problem.ParamSpace
	for i := 0; i < 256; i++ {
		u := RandomPoint(sp, ctx.Rng)
		if ctx.Search.Feasible == nil || ctx.Search.Feasible(u) {
			return u
		}
	}
	return RandomPoint(sp, ctx.Rng)
}

// LoopOptions configures one tuning run.
type LoopOptions struct {
	Budget int   // NS, the number of function evaluations
	Seed   int64 // RNG seed; runs are deterministic given the seed
	Search SearchOptions
	// OnSample, when set, observes every evaluation as it lands.
	OnSample func(i int, s Sample)
}

// RunLoop executes the iterative tuning loop: propose → evaluate →
// record, for Budget evaluations. Failed evaluations are recorded and
// count against the budget but are invisible to surrogate fits (the
// History.XY accessor skips them).
func RunLoop(p *Problem, task map[string]interface{}, proposer Proposer, opts LoopOptions) (*History, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("core: non-positive budget %d", opts.Budget)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	h := &History{}
	search := opts.Search
	if len(p.Constraints) > 0 {
		search.Feasible = func(u []float64) bool {
			return p.Feasible(task, p.ParamSpace.Decode(u))
		}
	}
	for i := 0; i < opts.Budget; i++ {
		ctx := &ProposeContext{
			Problem: p,
			Task:    task,
			History: h,
			Rng:     rng,
			Iter:    i,
			Search:  search,
		}
		u, err := proposer.Propose(ctx)
		if err != nil {
			return h, fmt.Errorf("core: proposer %s failed at iteration %d: %w", proposer.Name(), i, err)
		}
		if len(u) != p.ParamSpace.Dim() {
			return h, fmt.Errorf("core: proposer %s returned a %d-dim point, want %d", proposer.Name(), len(u), p.ParamSpace.Dim())
		}
		u = p.ParamSpace.Canonicalize(u)
		params := p.ParamSpace.Decode(u)
		s := Sample{ParamU: u, Params: params, Proposer: proposer.Name()}
		y, err := p.Evaluator.Evaluate(task, params)
		if err != nil {
			s.Failed = true
			s.Err = err.Error()
		} else {
			s.Y = y
		}
		h.Append(s)
		if opts.OnSample != nil {
			opts.OnSample(i, s)
		}
	}
	return h, nil
}
