package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// sampleEqual compares two samples bit-exactly (float equality is
// intentional: resume must be bit-identical, not approximately equal).
func sampleEqual(a, b Sample) bool {
	if len(a.ParamU) != len(b.ParamU) {
		return false
	}
	for i := range a.ParamU {
		if a.ParamU[i] != b.ParamU[i] {
			return false
		}
	}
	return a.Y == b.Y && a.Failed == b.Failed && a.Err == b.Err &&
		a.Proposer == b.Proposer && reflect.DeepEqual(a.Params, b.Params)
}

func assertHistoriesIdentical(t *testing.T, want, got *History) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("history length %d vs %d", want.Len(), got.Len())
	}
	for i := range want.Samples {
		if !sampleEqual(want.Samples[i], got.Samples[i]) {
			t.Fatalf("sample %d differs:\nwant %+v\ngot  %+v", i, want.Samples[i], got.Samples[i])
		}
	}
}

func TestSessionMatchesItselfRunToRun(t *testing.T) {
	p := quadProblem(t)
	run := func() *History {
		s, err := NewSession(p, nil, NewGPTuner(), SessionOptions{Budget: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	assertHistoriesIdentical(t, run(), run())
}

// TestSessionCheckpointResumeBitIdentical is the checkpoint round-trip
// wall: run for k evaluations, checkpoint, resume in a fresh session,
// and require the continued history to be bit-identical to an
// uninterrupted run — for every split point, both serial and with the
// parallel numeric engine fanned out to four workers.
func TestSessionCheckpointResumeBitIdentical(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		t.Setenv("GPTUNE_WORKERS", "1")
		checkpointResumeBitIdentical(t)
	})
	t.Run("workers=4", func(t *testing.T) {
		t.Setenv("GPTUNE_WORKERS", "4")
		checkpointResumeBitIdentical(t)
	})
}

func checkpointResumeBitIdentical(t *testing.T) {
	p := quadProblem(t)
	const budget = 8
	opts := SessionOptions{Budget: budget, Seed: 42}

	full, err := NewSession(p, nil, NewGPTuner(), opts)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k <= budget; k++ {
		t.Run(fmt.Sprintf("split=%d", k), func(t *testing.T) {
			s, err := NewSession(p, nil, NewGPTuner(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if err := s.Step(); err != nil {
					t.Fatal(err)
				}
			}
			cp, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			r, err := ResumeSession(p, nil, NewGPTuner(), opts, cp)
			if err != nil {
				t.Fatal(err)
			}
			if r.Iter() != k {
				t.Fatalf("resumed iter %d, want %d", r.Iter(), k)
			}
			h, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			assertHistoriesIdentical(t, uninterrupted, h)
		})
	}
}

func TestSessionCheckpointWithPendingProposal(t *testing.T) {
	// Suspending between Propose and Observe must resume with the same
	// outstanding point, and the final history must still match the
	// uninterrupted run.
	p := quadProblem(t)
	opts := SessionOptions{Budget: 6, Seed: 9}
	full, err := NewSession(p, nil, NewGPTuner(), opts)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	s, _ := NewSession(p, nil, NewGPTuner(), opts)
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	params, err := s.Propose()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := ResumeSession(p, nil, NewGPTuner(), opts, cp)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed session re-proposes the identical pending point
	// without consuming randomness.
	params2, err := r.Propose()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(params, params2) {
		t.Fatalf("pending proposal drifted: %v vs %v", params, params2)
	}
	h, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertHistoriesIdentical(t, uninterrupted, h)
}

func TestSessionProposeObserveRemoteMode(t *testing.T) {
	// A problem without an evaluator supports Propose/Observe (the
	// remote-worker mode) but rejects Step.
	p := quadProblem(t)
	eval := p.Evaluator
	p.Evaluator = nil
	t.Cleanup(func() { p.Evaluator = eval })

	s, err := NewSession(p, nil, NewGPTuner(), SessionOptions{Budget: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err == nil {
		t.Fatal("Step without evaluator must fail")
	}
	for !s.Done() {
		params, err := s.Propose()
		if err != nil {
			t.Fatal(err)
		}
		y, evalErr := eval.Evaluate(nil, params)
		if err := s.Observe(y, evalErr); err != nil {
			t.Fatal(err)
		}
	}
	if s.History().Len() != 3 {
		t.Fatalf("history length %d", s.History().Len())
	}
}

func TestSessionRecordsFailures(t *testing.T) {
	p := quadProblem(t)
	s, err := NewSession(p, nil, NewGPTuner(), SessionOptions{Budget: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Propose(); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(0, errors.New("oom")); err != nil {
		t.Fatal(err)
	}
	if s.History().NumOK() != 0 || s.History().Len() != 1 {
		t.Fatalf("failure not recorded: %+v", s.History())
	}
	if s.History().Samples[0].Err != "oom" {
		t.Fatalf("err text: %q", s.History().Samples[0].Err)
	}
}

func TestSessionValidation(t *testing.T) {
	p := quadProblem(t)
	if _, err := NewSession(p, nil, NewGPTuner(), SessionOptions{}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewSession(p, nil, nil, SessionOptions{Budget: 1}); err == nil {
		t.Fatal("nil proposer accepted")
	}
	s, _ := NewSession(p, nil, NewGPTuner(), SessionOptions{Budget: 1, Seed: 1})
	if err := s.Observe(1, nil); err == nil {
		t.Fatal("Observe without proposal accepted")
	}
}

func TestResumeSessionRejectsMismatches(t *testing.T) {
	p := quadProblem(t)
	s, _ := NewSession(p, nil, NewGPTuner(), SessionOptions{Budget: 4, Seed: 1})
	s.Step()
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	other := quadProblem(t)
	other.Name = "different"
	if _, err := ResumeSession(other, nil, NewGPTuner(), SessionOptions{Budget: 4}, cp); err == nil {
		t.Fatal("problem mismatch accepted")
	}
	if _, err := ResumeSession(p, nil, nil, SessionOptions{Budget: 4}, cp); err == nil {
		t.Fatal("nil proposer accepted")
	}
	if _, err := ResumeSession(p, nil, NewGPTuner(), SessionOptions{}, []byte("{")); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	wrong := &GPTuner{Acquisition: EI{}, MinSamples: 2, label: "Other"}
	if _, err := ResumeSession(p, nil, wrong, SessionOptions{}, cp); err == nil {
		t.Fatal("proposer mismatch accepted")
	}
}

func TestResumeSessionExtendsBudget(t *testing.T) {
	p := quadProblem(t)
	s, _ := NewSession(p, nil, NewGPTuner(), SessionOptions{Budget: 3, Seed: 5})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	cp, _ := s.Checkpoint()
	r, err := ResumeSession(p, nil, NewGPTuner(), SessionOptions{Budget: 6}, cp)
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 6 {
		t.Fatalf("extended run length %d, want 6", h.Len())
	}
}

func TestCheckpointableSourceMatchesAfterRestore(t *testing.T) {
	src := NewCheckpointableSource(123)
	for i := 0; i < 10; i++ {
		src.Uint64()
	}
	state := src.State()
	want := make([]uint64, 16)
	for i := range want {
		want[i] = src.Uint64()
	}
	restored := &CheckpointableSource{}
	restored.SetState(state)
	for i := range want {
		if got := restored.Uint64(); got != want[i] {
			t.Fatalf("draw %d: %d want %d", i, got, want[i])
		}
	}
}

func TestCheckpointableSourceInt63NonNegative(t *testing.T) {
	src := NewCheckpointableSource(-7)
	for i := 0; i < 1000; i++ {
		if v := src.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
	// Distinct seeds produce distinct streams.
	a, b := NewCheckpointableSource(1), NewCheckpointableSource(2)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("seeds 1 and 2 produced identical streams")
	}
	// Sanity: output is roughly centered (catches a broken mixer).
	src = NewCheckpointableSource(99)
	sum := 0.0
	for i := 0; i < 4096; i++ {
		sum += float64(src.Uint64()>>11) / (1 << 53)
	}
	if mean := sum / 4096; math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean %f far from 0.5", mean)
	}
}
