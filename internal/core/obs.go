package core

import (
	"errors"
	"time"

	"gptunecrowd/internal/obs"
)

// ErrBudgetExhausted is wrapped by Propose/Step when the session's
// evaluation budget is consumed; match with errors.Is. The root package
// re-exports it.
var ErrBudgetExhausted = errors.New("core: evaluation budget exhausted")

// Timers are the tuner's per-stage duration histograms. A nil *Timers
// (and nil individual histograms) is valid and records nothing, so the
// instrumentation adds no branches to callers.
type Timers struct {
	Fit      *obs.Histogram // tuner_fit_seconds: one surrogate fit
	Search   *obs.Histogram // tuner_search_seconds: one acquisition maximization
	Propose  *obs.Histogram // tuner_propose_seconds: one whole Propose call
	Evaluate *obs.Histogram // tuner_evaluate_seconds: one function evaluation
}

// NewTimers registers the tuner_* histograms on reg (nil reg returns
// nil Timers — observability off).
func NewTimers(reg *obs.Registry) *Timers {
	if reg == nil {
		return nil
	}
	return &Timers{
		Fit: reg.Histogram("tuner_fit_seconds",
			"Wall time of one surrogate-model fit.", nil),
		Search: reg.Histogram("tuner_search_seconds",
			"Wall time of one acquisition-function maximization.", nil),
		Propose: reg.Histogram("tuner_propose_seconds",
			"Wall time of one Propose call (fit + search + fallbacks).", nil),
		Evaluate: reg.Histogram("tuner_evaluate_seconds",
			"Wall time of one function evaluation.", nil),
	}
}

// ObserveFit records a surrogate-fit duration (nil-safe).
func (t *Timers) ObserveFit(d time.Duration) {
	if t != nil && t.Fit != nil {
		t.Fit.Observe(d.Seconds())
	}
}

// ObserveSearch records an acquisition-search duration (nil-safe).
func (t *Timers) ObserveSearch(d time.Duration) {
	if t != nil && t.Search != nil {
		t.Search.Observe(d.Seconds())
	}
}

// ObservePropose records a whole-Propose duration (nil-safe).
func (t *Timers) ObservePropose(d time.Duration) {
	if t != nil && t.Propose != nil {
		t.Propose.Observe(d.Seconds())
	}
}

// ObserveEvaluate records a function-evaluation duration (nil-safe).
func (t *Timers) ObserveEvaluate(d time.Duration) {
	if t != nil && t.Evaluate != nil {
		t.Evaluate.Observe(d.Seconds())
	}
}
