package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/space"
)

func quadProblem(t *testing.T) *Problem {
	t.Helper()
	ps, err := space.New(
		space.Param{Name: "x", Kind: space.Real, Lo: -5, Hi: 5},
		space.Param{Name: "y", Kind: space.Real, Lo: -5, Hi: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{
		Name:       "quad",
		ParamSpace: ps,
		Evaluator: EvaluatorFunc(func(_, params map[string]interface{}) (float64, error) {
			x := params["x"].(float64)
			y := params["y"].(float64)
			return (x-1)*(x-1) + (y+2)*(y+2) + 0.5, nil
		}),
	}
}

func TestHistoryBasics(t *testing.T) {
	h := &History{}
	h.Append(Sample{ParamU: []float64{0.1}, Y: 5})
	h.Append(Sample{ParamU: []float64{0.2}, Failed: true, Err: "oom"})
	h.Append(Sample{ParamU: []float64{0.3}, Y: 3})
	if h.Len() != 3 || h.NumOK() != 2 {
		t.Fatalf("Len=%d NumOK=%d", h.Len(), h.NumOK())
	}
	b, ok := h.Best()
	if !ok || b.Y != 3 {
		t.Fatalf("Best = %+v", b)
	}
	X, Y := h.XY()
	if len(X) != 2 || Y[1] != 3 {
		t.Fatal("XY should skip failures")
	}
	bsf := h.BestSoFar()
	if bsf[0] != 5 || bsf[1] != 5 || bsf[2] != 3 {
		t.Fatalf("BestSoFar = %v", bsf)
	}
	if !h.Contains([]float64{0.1}, 1e-9) || h.Contains([]float64{0.15}, 1e-9) {
		t.Fatal("Contains wrong")
	}
}

func TestBestSoFarAllFailedIsNaN(t *testing.T) {
	h := &History{}
	h.Append(Sample{Failed: true})
	if !math.IsNaN(h.BestSoFar()[0]) {
		t.Fatal("expected NaN before first success")
	}
	if _, ok := h.Best(); ok {
		t.Fatal("Best should report no sample")
	}
}

func TestEIProperties(t *testing.T) {
	e := EI{}
	// Better mean → higher EI at equal std.
	if e.Score(1, 1, 2) <= e.Score(3, 1, 2) {
		t.Fatal("EI should prefer lower means")
	}
	// More uncertainty → higher EI at equal mean.
	if e.Score(2, 2, 2) <= e.Score(2, 0.5, 2) {
		t.Fatal("EI should prefer higher std at the incumbent")
	}
	// Deterministic case.
	if e.Score(1, 0, 3) != 2 {
		t.Fatalf("deterministic EI = %v", e.Score(1, 0, 3))
	}
	if e.Score(5, 0, 3) != 0 {
		t.Fatal("no improvement means zero EI")
	}
	if e.Name() != "EI" {
		t.Fatal("name")
	}
}

func TestLCBAndPI(t *testing.T) {
	l := LCB{}
	if l.Score(1, 1, 0) <= l.Score(2, 1, 0) {
		t.Fatal("LCB should prefer lower means")
	}
	if l.Score(1, 2, 0) <= l.Score(1, 1, 0) {
		t.Fatal("LCB should prefer higher std")
	}
	p := PI{}
	if v := p.Score(0, 1, 0); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("PI at incumbent = %v", v)
	}
	if p.Score(1, 0, 3) != 1 || p.Score(5, 0, 3) != 0 {
		t.Fatal("deterministic PI wrong")
	}
	if l.Name() != "LCB" || p.Name() != "PI" {
		t.Fatal("names")
	}
}

func TestSearchNextFindsSurrogateMinimum(t *testing.T) {
	// Surrogate with a known minimum at (0.3, 0.7); tiny uniform std.
	surr := SurrogateFunc(func(x []float64) (float64, float64) {
		return (x[0]-0.3)*(x[0]-0.3) + (x[1]-0.7)*(x[1]-0.7), 0.01
	})
	ps := space.MustNew(
		space.Param{Name: "a", Kind: space.Real, Lo: 0, Hi: 1},
		space.Param{Name: "b", Kind: space.Real, Lo: 0, Hi: 1},
	)
	h := &History{}
	h.Append(Sample{ParamU: []float64{0.9, 0.9}, Y: 1})
	rng := rand.New(rand.NewSource(1))
	u := SearchNext(surr, ps, EI{}, h, rng, SearchOptions{})
	if math.Abs(u[0]-0.3) > 0.05 || math.Abs(u[1]-0.7) > 0.05 {
		t.Fatalf("SearchNext returned %v, want ~(0.3,0.7)", u)
	}
}

func TestSearchNextAvoidsDuplicates(t *testing.T) {
	// One-dimensional integer space with 3 levels; two already taken.
	ps := space.MustNew(space.Param{Name: "k", Kind: space.Integer, Lo: 0, Hi: 3})
	surr := SurrogateFunc(func(x []float64) (float64, float64) { return x[0], 0.01 })
	h := &History{}
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		u := SearchNext(surr, ps, EI{}, h, rng, SearchOptions{Candidates: 64, DEGens: 5})
		v := ps.Decode(u)["k"].(int)
		if seen[v] {
			t.Fatalf("duplicate value %d proposed at step %d", v, i)
		}
		seen[v] = true
		h.Append(Sample{ParamU: u, Y: float64(v)})
	}
	// Space exhausted: must still return something.
	u := SearchNext(surr, ps, EI{}, h, rng, SearchOptions{Candidates: 64, DEGens: 5})
	if len(u) != 1 {
		t.Fatal("no point returned for exhausted space")
	}
}

func TestRunLoopConvergesOnQuadratic(t *testing.T) {
	p := quadProblem(t)
	h, err := RunLoop(p, nil, NewGPTuner(), LoopOptions{Budget: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 25 {
		t.Fatalf("budget not consumed: %d", h.Len())
	}
	b, ok := h.Best()
	if !ok {
		t.Fatal("no best")
	}
	// Optimum value is 0.5; BO with 25 evals should get close.
	if b.Y > 1.5 {
		t.Fatalf("BO best %v too far from 0.5 (params %v)", b.Y, b.Params)
	}
	// Random search with the same budget is usually worse; at minimum
	// BO must beat the mean random value by a wide margin.
	if b.Y > 10 {
		t.Fatal("BO catastrophically bad")
	}
}

func TestRunLoopRecordsFailures(t *testing.T) {
	ps := space.MustNew(space.Param{Name: "x", Kind: space.Real, Lo: 0, Hi: 1})
	calls := 0
	p := &Problem{
		Name:       "flaky",
		ParamSpace: ps,
		Evaluator: EvaluatorFunc(func(_, params map[string]interface{}) (float64, error) {
			calls++
			if calls%2 == 1 {
				return 0, errors.New("oom")
			}
			return params["x"].(float64), nil
		}),
	}
	h, err := RunLoop(p, nil, NewGPTuner(), LoopOptions{Budget: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 10 {
		t.Fatalf("failures must consume budget: %d", h.Len())
	}
	if h.NumOK() != 5 {
		t.Fatalf("NumOK = %d", h.NumOK())
	}
	for _, s := range h.Samples {
		if s.Failed && s.Err != "oom" {
			t.Fatal("failure reason lost")
		}
	}
}

func TestRunLoopDeterministic(t *testing.T) {
	p := quadProblem(t)
	h1, err := RunLoop(p, nil, NewGPTuner(), LoopOptions{Budget: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := RunLoop(p, nil, NewGPTuner(), LoopOptions{Budget: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Samples {
		if h1.Samples[i].Y != h2.Samples[i].Y {
			t.Fatal("same seed must reproduce the run")
		}
	}
}

func TestRunLoopValidation(t *testing.T) {
	p := quadProblem(t)
	if _, err := RunLoop(p, nil, NewGPTuner(), LoopOptions{Budget: 0}); err == nil {
		t.Fatal("expected budget error")
	}
	bad := &Problem{Name: "x"}
	if _, err := RunLoop(bad, nil, NewGPTuner(), LoopOptions{Budget: 1}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestOnSampleCallback(t *testing.T) {
	p := quadProblem(t)
	var seen int
	_, err := RunLoop(p, nil, NewGPTuner(), LoopOptions{
		Budget: 5, Seed: 6,
		OnSample: func(i int, s Sample) {
			if i != seen {
				t.Fatalf("callback order: got %d want %d", i, seen)
			}
			if s.Proposer != "NoTLA" {
				t.Fatalf("proposer tag %q", s.Proposer)
			}
			seen++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("callback fired %d times", seen)
	}
}

func TestCategoricalMask(t *testing.T) {
	ps := space.MustNew(
		space.Param{Name: "a", Kind: space.Real, Lo: 0, Hi: 1},
		space.Param{Name: "c", Kind: space.Categorical, Categories: []string{"x", "y"}},
	)
	p := &Problem{Name: "m", ParamSpace: ps, Evaluator: EvaluatorFunc(func(_, _ map[string]interface{}) (float64, error) { return 0, nil })}
	mask := p.CategoricalMask()
	if mask == nil || mask[0] || !mask[1] {
		t.Fatalf("mask = %v", mask)
	}
	p2 := quadProblem(t)
	if p2.CategoricalMask() != nil {
		t.Fatal("all-continuous mask should be nil")
	}
}

func TestConstraintsRespected(t *testing.T) {
	ps := space.MustNew(
		space.Param{Name: "a", Kind: space.Integer, Lo: 1, Hi: 9},
		space.Param{Name: "b", Kind: space.Integer, Lo: 1, Hi: 9},
	)
	p := &Problem{
		Name:       "grid",
		ParamSpace: ps,
		Constraints: []Constraint{{
			Name: "product-cap",
			Check: func(_, params map[string]interface{}) bool {
				return params["a"].(int)*params["b"].(int) <= 16
			},
		}},
		Evaluator: EvaluatorFunc(func(_, params map[string]interface{}) (float64, error) {
			a := float64(params["a"].(int))
			b := float64(params["b"].(int))
			return 100/(a*b) + a + b, nil
		}),
	}
	h, err := RunLoop(p, nil, NewGPTuner(), LoopOptions{Budget: 15, Seed: 7,
		Search: SearchOptions{Candidates: 64, DEGens: 10}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range h.Samples {
		prod := s.Params["a"].(int) * s.Params["b"].(int)
		if prod > 16 {
			t.Fatalf("infeasible point proposed: %v", s.Params)
		}
	}
	// The constrained optimum (a*b=16 boundary region) should be found.
	best, _ := h.Best()
	if best.Y > 16 {
		t.Fatalf("constrained best %v too poor", best.Y)
	}
}

func TestFeasibleHelper(t *testing.T) {
	p := quadProblem(t)
	if !p.Feasible(nil, map[string]interface{}{"x": 1.0, "y": 1.0}) {
		t.Fatal("no constraints should mean feasible")
	}
	p.Constraints = []Constraint{{Name: "never", Check: func(_, _ map[string]interface{}) bool { return false }}}
	if p.Feasible(nil, map[string]interface{}{"x": 1.0, "y": 1.0}) {
		t.Fatal("constraint ignored")
	}
	// RandomFeasible must not hang on an unsatisfiable constraint.
	ctx := &ProposeContext{
		Problem: p,
		Rng:     rand.New(rand.NewSource(1)),
		Search:  SearchOptions{Feasible: func(u []float64) bool { return false }},
	}
	if u := ctx.RandomFeasible(); len(u) != 2 {
		t.Fatal("fallback draw missing")
	}
}

func TestBatchLoopRespectsConstraints(t *testing.T) {
	ps := space.MustNew(space.Param{Name: "a", Kind: space.Integer, Lo: 0, Hi: 10})
	p := &Problem{
		Name:       "even",
		ParamSpace: ps,
		Constraints: []Constraint{{
			Name:  "even-only",
			Check: func(_, params map[string]interface{}) bool { return params["a"].(int)%2 == 0 },
		}},
		Evaluator: EvaluatorFunc(func(_, params map[string]interface{}) (float64, error) {
			return float64(params["a"].(int)), nil
		}),
	}
	h, err := RunLoopBatch(p, nil, NewGPTuner(), BatchOptions{Budget: 8, BatchSize: 2, Seed: 8,
		Search: SearchOptions{Candidates: 64, DEGens: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range h.Samples {
		if s.Params["a"].(int)%2 != 0 {
			t.Fatalf("odd value proposed: %v", s.Params)
		}
	}
}
