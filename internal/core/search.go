package core

import (
	"math"
	"math/rand"
	"sync"

	"gptunecrowd/internal/optimize"
	"gptunecrowd/internal/parallel"
	"gptunecrowd/internal/sample"
	"gptunecrowd/internal/space"
)

// searchScratch recycles the per-call buffers of SearchNext — the
// candidate pool (one flat backing array resliced into rows), its
// score vector, and the canonicalized-pool/mean/std buffers of the
// batched prescreen — so steady-state suggestion serving is
// allocation-flat.
type searchScratch struct {
	flat   []float64
	pool   [][]float64
	scores []float64

	canonFlat   []float64
	canon       [][]float64
	means, stds []float64
}

func (sc *searchScratch) resize(n, dim int) {
	if cap(sc.flat) < n*dim {
		sc.flat = make([]float64, n*dim)
	}
	sc.flat = sc.flat[:n*dim]
	if cap(sc.pool) < n {
		sc.pool = make([][]float64, n)
	}
	sc.pool = sc.pool[:n]
	for i := range sc.pool {
		sc.pool[i] = sc.flat[i*dim : (i+1)*dim]
	}
	if cap(sc.scores) < n {
		sc.scores = make([]float64, n)
	}
	sc.scores = sc.scores[:n]
}

// resizeBatch extends the scratch with the canonical-point rows and
// posterior buffers of the batched prescreen path.
func (sc *searchScratch) resizeBatch(n, dim int) {
	if cap(sc.canonFlat) < n*dim {
		sc.canonFlat = make([]float64, n*dim)
	}
	sc.canonFlat = sc.canonFlat[:n*dim]
	if cap(sc.canon) < n {
		sc.canon = make([][]float64, n)
	}
	sc.canon = sc.canon[:n]
	for i := range sc.canon {
		sc.canon[i] = sc.canonFlat[i*dim : (i+1)*dim]
	}
	if cap(sc.means) < n {
		sc.means = make([]float64, n)
		sc.stds = make([]float64, n)
	}
	sc.means = sc.means[:n]
	sc.stds = sc.stds[:n]
}

var searchPool = sync.Pool{New: func() interface{} { return new(searchScratch) }}

// canonPool recycles the canonicalization buffer of one acquisition
// evaluation; stored as *[]float64 so Put does not allocate.
var canonPool = sync.Pool{New: func() interface{} { b := make([]float64, 0, 32); return &b }}

// SearchOptions tunes the acquisition maximization.
type SearchOptions struct {
	Candidates int // random candidate pool size (default 256)
	DEGens     int // differential-evolution generations (default 30)
	DEPop      int // DE population (default 0 → heuristic)
	DedupTol   float64
	// Workers bounds the parallelism of candidate scoring (prescreen pool
	// and DE seeding). <= 0 means the engine default: GPTUNE_WORKERS when
	// set, else GOMAXPROCS. The surrogate's Predict must be safe for
	// concurrent calls (the GP and LCM models are). Results are
	// bit-identical for every worker count.
	Workers int
	// Feasible, when set, restricts the search to normalized points it
	// accepts (populated by the loop from Problem.Constraints).
	Feasible func(u []float64) bool
	// Penalty, when set, multiplies the acquisition value at a canonical
	// point by a factor in [0,1] — the local-penalization hook batch
	// proposals use to push later points away from pending ones. For
	// acquisitions that can go negative (LCB) the factor divides
	// instead, so a penalized point is always ranked worse. Must be safe
	// for concurrent calls.
	Penalty func(u []float64) float64
}

func (o *SearchOptions) defaults() {
	if o.Candidates == 0 {
		o.Candidates = 256
	}
	if o.DEGens == 0 {
		o.DEGens = 30
	}
	if o.DedupTol == 0 {
		o.DedupTol = 1e-9
	}
}

// SearchNext maximizes the acquisition over the normalized parameter
// space and returns a canonicalized point not yet present in the
// history: a random-candidate prescreen seeds differential evolution,
// whose winner is snapped to the discrete grid. Falls back to random
// points if everything promising is a duplicate.
//
// When surr also implements BatchPredictor the prescreen pool is
// scored through one PredictBatchInto call instead of per-candidate
// Predict calls; the scores — and therefore the returned point — are
// bit-identical either way.
func SearchNext(surr Predictor, sp *space.Space, acq Acquisition, h *History, rng *rand.Rand, opts SearchOptions) []float64 {
	opts.defaults()
	dim := sp.Dim()
	best := bestForAcq(h)
	neg := func(u []float64) float64 {
		// Canonicalize into a pooled buffer: the canonical point is only
		// read by Feasible/Predict and never retained, so it can be
		// recycled the moment this evaluation returns.
		bp := canonPool.Get().(*[]float64)
		c := *bp
		if cap(c) < dim {
			c = make([]float64, dim)
		}
		c = c[:dim]
		sp.CanonicalizeInto(u, c)
		f := math.Inf(1)
		if opts.Feasible == nil || opts.Feasible(c) {
			mean, std := surr.Predict(c)
			score := acq.Score(mean, std, best)
			if opts.Penalty != nil {
				score = penalize(score, opts.Penalty(c))
			}
			f = -score
		}
		*bp = c
		canonPool.Put(bp)
		return f
	}
	// Prescreen a candidate pool for DE seeds: scores fan out over
	// workers into per-candidate slots, then the top-8 selection scans
	// them in pool order — the same order the serial loop used, so the
	// seeds are identical for every worker count. The pool rows live in
	// recycled scratch; DE copies its seed vectors, and every use below
	// finishes before the deferred Put.
	sc := searchPool.Get().(*searchScratch)
	defer searchPool.Put(sc)
	sc.resize(opts.Candidates, dim)
	pool := sc.pool
	sample.LatinHypercubeInto(pool, rng)
	scores := sc.scores
	if bp, ok := surr.(BatchPredictor); ok {
		// Vectorized prescreen: canonicalize every candidate, fetch the
		// posterior for the whole pool in one batched call, then apply
		// acquisition/penalty per slot. Predict is deterministic per
		// point, so the scores match the pointwise path bit for bit.
		sc.resizeBatch(opts.Candidates, dim)
		canon, means, stds := sc.canon, sc.means, sc.stds
		parallel.For(len(pool), opts.Workers, func(i int) {
			sp.CanonicalizeInto(pool[i], canon[i])
		})
		bp.PredictBatchInto(canon, means, stds, opts.Workers)
		parallel.For(len(pool), opts.Workers, func(i int) {
			scores[i] = math.Inf(1)
			if opts.Feasible != nil && !opts.Feasible(canon[i]) {
				return
			}
			score := acq.Score(means[i], stds[i], best)
			if opts.Penalty != nil {
				score = penalize(score, opts.Penalty(canon[i]))
			}
			scores[i] = -score
		})
	} else {
		parallel.For(len(pool), opts.Workers, func(i int) {
			scores[i] = neg(pool[i])
		})
	}
	type scored struct {
		u []float64
		f float64
	}
	top := make([]scored, 0, 8)
	for pi, u := range pool {
		f := scores[pi]
		if len(top) < 8 {
			top = append(top, scored{u, f})
			continue
		}
		worst := 0
		for i := range top {
			if top[i].f > top[worst].f {
				worst = i
			}
		}
		if f < top[worst].f {
			top[worst] = scored{u, f}
		}
	}
	seeds := make([][]float64, len(top))
	for i, s := range top {
		seeds[i] = s.u
	}
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for d := range hi {
		hi[d] = 1
	}
	res := optimize.DifferentialEvolution(neg, optimize.DEConfig{
		Lower:   lo,
		Upper:   hi,
		MaxGen:  opts.DEGens,
		Pop:     opts.DEPop,
		Seeds:   seeds,
		RandSrc: rng,
		Workers: opts.Workers,
	})
	u := sp.Canonicalize(res.X)
	if !h.Contains(u, opts.DedupTol) {
		return u
	}
	// The optimum was already evaluated (common on small discrete
	// spaces): take the best non-duplicate from the prescreen pool,
	// else a fresh random point.
	bestAlt := []float64(nil)
	bestF := 0.0
	for _, s := range top {
		if math.IsInf(s.f, 1) {
			continue // infeasible or unscoreable candidate
		}
		c := sp.Canonicalize(s.u)
		if h.Contains(c, opts.DedupTol) {
			continue
		}
		if bestAlt == nil || s.f < bestF {
			bestAlt, bestF = c, s.f
		}
	}
	if bestAlt != nil {
		return bestAlt
	}
	for i := 0; i < 64; i++ {
		u := make([]float64, dim)
		for d := range u {
			u[d] = rng.Float64()
		}
		c := sp.Canonicalize(u)
		if opts.Feasible != nil && !opts.Feasible(c) {
			continue
		}
		if !h.Contains(c, opts.DedupTol) {
			return c
		}
	}
	// Space may be exhausted; return the optimum even though it repeats.
	return u
}

// penalize applies a [0,1] penalty factor to an acquisition score.
// Positive scores shrink toward 0; negative scores (LCB) shrink toward
// -inf by dividing, so a penalized point is always ranked worse.
func penalize(score, p float64) float64 {
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	if score > 0 {
		return score * p
	}
	return score / math.Max(p, 1e-12)
}

// RandomPoint returns a canonicalized uniform random point.
func RandomPoint(sp *space.Space, rng *rand.Rand) []float64 {
	u := make([]float64, sp.Dim())
	for d := range u {
		u[d] = rng.Float64()
	}
	return sp.Canonicalize(u)
}

// LHSPoints returns n canonicalized Latin-hypercube points.
func LHSPoints(sp *space.Space, n int, rng *rand.Rand) [][]float64 {
	raw := sample.LatinHypercube(n, sp.Dim(), rng)
	out := make([][]float64, n)
	for i, u := range raw {
		out[i] = sp.Canonicalize(u)
	}
	return out
}
