package core

import (
	"math"
	"sort"
)

// RobustOptions tunes the robust-ingestion step that runs before every
// surrogate fit. The zero value selects the defaults below.
type RobustOptions struct {
	// MADThreshold is the outlier cutoff in robust standard deviations
	// (1.4826·MAD): samples farther than this from the median objective
	// are excluded from the fit. Default 6 — generous enough to keep
	// genuinely bad-but-real configurations, tight enough to drop
	// adversarial orders-of-magnitude values.
	MADThreshold float64
	// PenaltyFactor sets the imputed objective for failed evaluations:
	// worst kept value + PenaltyFactor·(kept spread). Default 1.5.
	PenaltyFactor float64
}

const (
	defaultMADThreshold  = 6.0
	defaultPenaltyFactor = 1.5
)

// RobustInfo reports what the robust-ingestion step did to one
// history view.
type RobustInfo struct {
	OK        int // successful finite samples kept
	Outliers  int // successful samples excluded by the MAD filter
	Imputed   int // failed evaluations penalty-imputed into the fit
	NonFinite int // successful samples dropped for a non-finite objective
}

// RobustXY is the trust-hardened sibling of XY: the sample view
// surrogate fits should consume when the history may contain crowd
// noise. It
//
//   - drops successful samples with a non-finite objective (defense in
//     depth — Session.Observe already converts those to failures),
//   - excludes successful samples whose objective is a MAD outlier
//     (|y − median| > MADThreshold · 1.4826 · MAD), and
//   - imputes every failed evaluation at a penalty value (worst kept
//     objective + PenaltyFactor · kept spread), so a crashed
//     configuration steers the model away instead of vanishing.
//
// The result is deterministic in the history contents. With no
// successful finite samples it returns empty slices (there is no
// baseline to impute against).
func (h *History) RobustXY(opts RobustOptions) ([][]float64, []float64, RobustInfo) {
	thr := opts.MADThreshold
	if thr <= 0 {
		thr = defaultMADThreshold
	}
	pen := opts.PenaltyFactor
	if pen <= 0 {
		pen = defaultPenaltyFactor
	}
	var info RobustInfo

	okY := make([]float64, 0, len(h.Samples))
	for _, s := range h.Samples {
		if s.Failed {
			continue
		}
		if math.IsNaN(s.Y) || math.IsInf(s.Y, 0) {
			info.NonFinite++
			continue
		}
		okY = append(okY, s.Y)
	}
	if len(okY) == 0 {
		info.Imputed = 0
		return nil, nil, info
	}
	med, sigma := medianMAD(okY)

	// First pass: decide which successful samples survive the filter
	// and find the kept min/max for the penalty value.
	keep := func(y float64) bool {
		return sigma == 0 || math.Abs(y-med) <= thr*sigma
	}
	minKept, maxKept := math.Inf(1), math.Inf(-1)
	for _, y := range okY {
		if keep(y) {
			if y < minKept {
				minKept = y
			}
			if y > maxKept {
				maxKept = y
			}
		}
	}
	spread := maxKept - minKept
	if spread <= 0 {
		spread = math.Max(math.Abs(maxKept)*0.1, 1)
	}
	penalty := maxKept + pen*spread

	X := make([][]float64, 0, len(h.Samples))
	Y := make([]float64, 0, len(h.Samples))
	for _, s := range h.Samples {
		switch {
		case s.Failed:
			X = append(X, s.ParamU)
			Y = append(Y, penalty)
			info.Imputed++
		case math.IsNaN(s.Y) || math.IsInf(s.Y, 0):
			// counted above
		case keep(s.Y):
			X = append(X, s.ParamU)
			Y = append(Y, s.Y)
			info.OK++
		default:
			info.Outliers++
		}
	}
	return X, Y, info
}

// medianMAD returns the median and the MAD-based robust standard
// deviation (1.4826·MAD) of v.
func medianMAD(v []float64) (med, sigma float64) {
	cp := append([]float64(nil), v...)
	sort.Float64s(cp)
	med = quantileSorted(cp)
	dev := make([]float64, len(cp))
	for i, y := range cp {
		dev[i] = math.Abs(y - med)
	}
	sort.Float64s(dev)
	return med, 1.4826 * quantileSorted(dev)
}

func quantileSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}

// RobustStats counts the degradation events of one tuning session: how
// often a surrogate fit failed and the proposer fell back to
// space-filling sampling, plus the cumulative robust-ingestion gauges
// of the most recent fit.
type RobustStats struct {
	// FitFailures counts surrogate fit errors survived by degrading.
	FitFailures int64 `json:"fit_failures,omitempty"`
	// SpaceFill counts iterations answered with space-filling sampling
	// because the model was unavailable (fit failure — not the normal
	// warm-up randoms).
	SpaceFill int64 `json:"space_fill,omitempty"`
	// LastOutliers/LastImputed describe the most recent robust
	// ingestion: samples MAD-excluded and failures penalty-imputed.
	LastOutliers int64 `json:"last_outliers,omitempty"`
	LastImputed  int64 `json:"last_imputed,omitempty"`
}
