package core

import (
	"math"

	"gptunecrowd/internal/stat"
)

// Acquisition scores a candidate point; the tuner maximizes it. All
// acquisitions are phrased for minimization problems.
type Acquisition interface {
	Score(mean, std, best float64) float64
	Name() string
}

// EI is the expected-improvement acquisition (the GPTune default).
type EI struct {
	// Xi is the exploration offset subtracted from the incumbent
	// (0 is the classic formulation).
	Xi float64
}

// Score returns E[max(best − ξ − Y, 0)] for Y ~ N(mean, std²).
func (e EI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best-e.Xi {
			return best - e.Xi - mean
		}
		return 0
	}
	d := best - e.Xi - mean
	z := d / std
	return d*stat.NormCDF(z) + std*stat.NormPDF(z)
}

// Name implements Acquisition.
func (EI) Name() string { return "EI" }

// LCB is the lower-confidence-bound acquisition, scored as the negated
// bound so that larger is better.
type LCB struct {
	// Kappa controls exploration (default 1.96 when zero).
	Kappa float64
}

// Score returns −(mean − κ·std).
func (l LCB) Score(mean, std, _ float64) float64 {
	k := l.Kappa
	if k == 0 {
		k = 1.96
	}
	return -(mean - k*std)
}

// Name implements Acquisition.
func (LCB) Name() string { return "LCB" }

// PI is the probability-of-improvement acquisition.
type PI struct{ Xi float64 }

// Score returns P(Y < best − ξ).
func (p PI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best-p.Xi {
			return 1
		}
		return 0
	}
	return stat.NormCDF((best - p.Xi - mean) / std)
}

// Name implements Acquisition.
func (PI) Name() string { return "PI" }

// bestForAcq extracts the incumbent for the acquisition: the minimum
// observed objective, or +Inf when nothing succeeded yet (EI then
// degenerates, so callers should prefer random sampling in that case).
func bestForAcq(h *History) float64 {
	if b, ok := h.Best(); ok {
		return b.Y
	}
	return math.Inf(1)
}
