package core

import (
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/space"
)

// SearchNext must propose the exact same point for every worker count:
// the candidate pool and DE population are drawn from the RNG before
// any parallel scoring, and the scoring itself consumes no randomness.
func TestSearchNextDeterministicAcrossWorkers(t *testing.T) {
	surr := SurrogateFunc(func(x []float64) (float64, float64) {
		return math.Sin(5*x[0]) + (x[1]-0.4)*(x[1]-0.4), 0.1 + 0.05*x[0]
	})
	ps := space.MustNew(
		space.Param{Name: "a", Kind: space.Real, Lo: 0, Hi: 1},
		space.Param{Name: "b", Kind: space.Real, Lo: 0, Hi: 1},
	)
	h := &History{}
	h.Append(Sample{ParamU: []float64{0.2, 0.8}, Y: 0.5})
	h.Append(Sample{ParamU: []float64{0.7, 0.1}, Y: -0.2})
	search := func(workers int) []float64 {
		rng := rand.New(rand.NewSource(11))
		return SearchNext(surr, ps, EI{}, h, rng, SearchOptions{
			Candidates: 128, DEGens: 10, Workers: workers,
		})
	}
	ref := search(1)
	for _, w := range []int{2, 8} {
		got := search(w)
		for d := range ref {
			if got[d] != ref[d] {
				t.Fatalf("workers=%d: proposal %v differs from serial %v", w, got, ref)
			}
		}
	}
}
