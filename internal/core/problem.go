// Package core contains the Bayesian-optimization engine shared by the
// plain (NoTLA) tuner and every transfer-learning algorithm: the tuning
// problem abstraction, evaluation history with failure tracking,
// acquisition functions, acquisition search, and the tuning loop.
package core

import (
	"errors"
	"fmt"

	"gptunecrowd/internal/space"
)

// Evaluator runs the application (or its simulator) for one task and one
// tuning-parameter configuration, returning the objective value
// (a runtime, to be minimized). Returning an error marks the evaluation
// as failed (e.g. an out-of-memory run); failed evaluations consume
// budget but are excluded from surrogate fitting, as in Section VI-C of
// the paper.
type Evaluator interface {
	Evaluate(task, params map[string]interface{}) (float64, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(task, params map[string]interface{}) (float64, error)

// Evaluate implements Evaluator.
func (f EvaluatorFunc) Evaluate(task, params map[string]interface{}) (float64, error) {
	return f(task, params)
}

// Constraint is a named feasibility predicate over decoded
// configurations (GPTune's "problem constraints"): infeasible points
// are never proposed, saving the budget that failed evaluations would
// burn.
type Constraint struct {
	Name  string
	Check func(task, params map[string]interface{}) bool
}

// Problem is a tuning problem: the task (input) space, the
// tuning-parameter space, the output space and the objective evaluator.
type Problem struct {
	Name       string
	TaskSpace  *space.Space
	ParamSpace *space.Space
	Output     space.OutputSpace
	Evaluator  Evaluator
	// Constraints restrict the feasible configuration set. All must
	// pass for a point to be proposed.
	Constraints []Constraint
}

// Feasible reports whether params satisfies every constraint.
func (p *Problem) Feasible(task, params map[string]interface{}) bool {
	for _, c := range p.Constraints {
		if c.Check != nil && !c.Check(task, params) {
			return false
		}
	}
	return true
}

// Validate checks that the problem is runnable.
func (p *Problem) Validate() error {
	if p == nil {
		return errors.New("core: nil problem")
	}
	if p.Name == "" {
		return errors.New("core: problem needs a name")
	}
	if p.ParamSpace == nil || p.ParamSpace.Dim() == 0 {
		return fmt.Errorf("core: problem %q needs a non-empty parameter space", p.Name)
	}
	if p.Evaluator == nil {
		return fmt.Errorf("core: problem %q needs an evaluator", p.Name)
	}
	return nil
}

// CategoricalMask returns the per-dimension categorical flags of the
// parameter space, for kernel construction.
func (p *Problem) CategoricalMask() []bool {
	kinds := p.ParamSpace.Kinds()
	mask := make([]bool, len(kinds))
	any := false
	for i, k := range kinds {
		if k == space.Categorical {
			mask[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return mask
}
