package core

// CheckpointableSource is a serializable rand.Source64 (SplitMix64).
// Checkpointable tuning sessions use it instead of math/rand's default
// source, whose state cannot be extracted: capturing the single uint64
// state word is enough to resume a run bit-identically.
//
// SplitMix64 passes BigCrush, has a full 2^64 period, and — unlike the
// default Go source — costs one word to snapshot.
type CheckpointableSource struct {
	state uint64
}

// NewCheckpointableSource returns a source seeded like rand.NewSource.
func NewCheckpointableSource(seed int64) *CheckpointableSource {
	s := &CheckpointableSource{}
	s.Seed(seed)
	return s
}

// Seed resets the source to a seed-derived state.
func (s *CheckpointableSource) Seed(seed int64) {
	// One mixing round separates small consecutive seeds.
	s.state = uint64(seed)
	s.state = mix64(s.state + 0x9E3779B97F4A7C15)
}

// Uint64 implements rand.Source64.
func (s *CheckpointableSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *CheckpointableSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// State returns the current state word for checkpointing.
func (s *CheckpointableSource) State() uint64 { return s.state }

// SetState restores a state captured with State.
func (s *CheckpointableSource) SetState(v uint64) { s.state = v }

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
