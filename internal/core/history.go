package core

import (
	"math"
)

// Sample records one function evaluation.
type Sample struct {
	ParamU []float64              // normalized tuning-parameter point
	Params map[string]interface{} // decoded configuration
	Y      float64                // objective value (valid when !Failed)
	Failed bool
	Err    string // failure description when Failed

	Proposer string // name of the algorithm that suggested this point
}

// History accumulates the evaluations of one target task.
type History struct {
	Samples []Sample
}

// Append adds a sample.
func (h *History) Append(s Sample) { h.Samples = append(h.Samples, s) }

// Len returns the total number of evaluations, including failures.
func (h *History) Len() int { return len(h.Samples) }

// NumOK returns the number of successful evaluations.
func (h *History) NumOK() int {
	n := 0
	for _, s := range h.Samples {
		if !s.Failed {
			n++
		}
	}
	return n
}

// XY returns the successful samples as aligned input/target slices.
func (h *History) XY() ([][]float64, []float64) {
	X := make([][]float64, 0, len(h.Samples))
	Y := make([]float64, 0, len(h.Samples))
	for _, s := range h.Samples {
		if s.Failed {
			continue
		}
		X = append(X, s.ParamU)
		Y = append(Y, s.Y)
	}
	return X, Y
}

// Best returns the successful sample with the lowest objective.
func (h *History) Best() (Sample, bool) {
	best := Sample{Y: math.Inf(1)}
	found := false
	for _, s := range h.Samples {
		if !s.Failed && s.Y < best.Y {
			best = s
			found = true
		}
	}
	return best, found
}

// BestSoFar returns, for each evaluation index i (1-based count), the
// best objective observed in the first i evaluations; NaN until the
// first success. This is the "best-so-far" series plotted in every
// figure of the paper.
func (h *History) BestSoFar() []float64 {
	out := make([]float64, len(h.Samples))
	best := math.NaN()
	for i, s := range h.Samples {
		if !s.Failed && (math.IsNaN(best) || s.Y < best) {
			best = s.Y
		}
		out[i] = best
	}
	return out
}

// Contains reports whether the (canonicalized) point u was already
// evaluated, within tolerance.
func (h *History) Contains(u []float64, tol float64) bool {
	for _, s := range h.Samples {
		if len(s.ParamU) != len(u) {
			continue
		}
		match := true
		for d := range u {
			if math.Abs(s.ParamU[d]-u[d]) > tol {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
