package core

import (
	"fmt"
	"math/rand"
	"sync"
)

// BatchOptions configures a parallel tuning run: per round, BatchSize
// points are proposed with the constant-liar strategy (each proposal is
// committed to a scratch history with a pessimistic "lie" so the next
// proposal explores elsewhere) and evaluated concurrently by Workers
// goroutines — the pattern used when an HPC allocation can run several
// trial configurations at once.
type BatchOptions struct {
	Budget    int // total function evaluations
	BatchSize int // proposals per round (default 2)
	Workers   int // concurrent evaluations (default BatchSize)
	Seed      int64
	Search    SearchOptions
	// OnSample observes evaluations in deterministic (proposal) order.
	OnSample func(i int, s Sample)
}

// RunLoopBatch executes the batched tuning loop. Results are
// deterministic for a fixed seed: proposals are generated sequentially
// and recorded in proposal order regardless of which evaluation
// finishes first.
func RunLoopBatch(p *Problem, task map[string]interface{}, proposer Proposer, opts BatchOptions) (*History, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("core: non-positive budget %d", opts.Budget)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 2
	}
	if opts.Workers <= 0 {
		opts.Workers = opts.BatchSize
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	h := &History{}
	search := opts.Search
	if len(p.Constraints) > 0 {
		search.Feasible = func(u []float64) bool {
			return p.Feasible(task, p.ParamSpace.Decode(u))
		}
	}
	evalIdx := 0
	for evalIdx < opts.Budget {
		batch := opts.BatchSize
		if rem := opts.Budget - evalIdx; batch > rem {
			batch = rem
		}
		// Propose batch points sequentially against a scratch history
		// that accumulates constant lies.
		scratch := &History{Samples: append([]Sample(nil), h.Samples...)}
		lie := lieValue(h)
		points := make([][]float64, 0, batch)
		for k := 0; k < batch; k++ {
			ctx := &ProposeContext{
				Problem: p,
				Task:    task,
				History: scratch,
				Rng:     rng,
				Iter:    evalIdx + k,
				Search:  search,
			}
			u, err := proposer.Propose(ctx)
			if err != nil {
				return h, fmt.Errorf("core: proposer %s failed at iteration %d: %w", proposer.Name(), evalIdx+k, err)
			}
			u = p.ParamSpace.Canonicalize(u)
			points = append(points, u)
			scratch.Append(Sample{ParamU: u, Y: lie, Proposer: proposer.Name()})
		}
		// Evaluate the batch concurrently.
		results := make([]Sample, batch)
		var wg sync.WaitGroup
		sem := make(chan struct{}, opts.Workers)
		for k, u := range points {
			wg.Add(1)
			go func(k int, u []float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				params := p.ParamSpace.Decode(u)
				s := Sample{ParamU: u, Params: params, Proposer: proposer.Name()}
				y, err := p.Evaluator.Evaluate(task, params)
				if err != nil {
					s.Failed = true
					s.Err = err.Error()
				} else {
					s.Y = y
				}
				results[k] = s
			}(k, u)
		}
		wg.Wait()
		for k, s := range results {
			h.Append(s)
			if opts.OnSample != nil {
				opts.OnSample(evalIdx+k, s)
			}
		}
		evalIdx += batch
	}
	return h, nil
}

// lieValue is the constant-liar target: the incumbent when one exists
// (the "max lie" variant would use the worst), otherwise zero — the
// surrogate standardizes targets, so the absolute level only matters
// relative to the observed samples.
func lieValue(h *History) float64 {
	if best, ok := h.Best(); ok {
		return best.Y
	}
	return 0
}
