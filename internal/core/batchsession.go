package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// Batch observation errors. Drivers feeding a session from a crowd of
// workers match these with errors.Is to tell harmless races (a retried
// task reporting a result the ledger already committed) from caller
// bugs (an id the session never issued).
var (
	// ErrStaleObservation marks a result for a proposal that was already
	// observed and committed to the history. Safe to ignore: the ledger
	// accepted the first result and this one changes nothing.
	ErrStaleObservation = errors.New("core: observation for an already-committed proposal")
	// ErrDuplicateObservation marks a second result for a proposal that
	// is still pending. The first result stands.
	ErrDuplicateObservation = errors.New("core: duplicate observation for a pending proposal")
	// ErrUnknownProposal marks an id the session never issued.
	ErrUnknownProposal = errors.New("core: observation for an unknown proposal id")
)

// Batch strategy names accepted by BatchConfig.Strategy.
const (
	BatchConstantLiar      = "cl"
	BatchLocalPenalization = "lp"
)

// BatchConfig selects how in-flight proposals influence later ones when
// a batch is generated against the same surrogate.
type BatchConfig struct {
	// Strategy is "cl" (constant liar, the default: each pending point
	// enters the scratch history with the incumbent objective, so the
	// surrogate's uncertainty collapses there) or "lp" (local
	// penalization: pending points are invisible to the fit but the
	// acquisition is multiplied by 1-exp(-d²/2r²) around each, pushing
	// the search away without inventing observations).
	Strategy string
	// LPRadius is the local-penalization radius in normalized [0,1]
	// coordinates (default 0.1). Used only by the "lp" strategy.
	LPRadius float64
}

func (c *BatchConfig) validate() error {
	switch c.Strategy {
	case "", BatchConstantLiar, BatchLocalPenalization:
	default:
		return fmt.Errorf("core: unknown batch strategy %q (want %q or %q)",
			c.Strategy, BatchConstantLiar, BatchLocalPenalization)
	}
	if c.LPRadius < 0 || math.IsNaN(c.LPRadius) || math.IsInf(c.LPRadius, 0) {
		return fmt.Errorf("core: bad local-penalization radius %v", c.LPRadius)
	}
	if c.LPRadius == 0 {
		c.LPRadius = 0.1
	}
	return nil
}

// PendingProposal is one outstanding batch proposal: the point to
// evaluate plus the id its result must be reported under.
type PendingProposal struct {
	// ID is the session-unique, monotonically increasing proposal id.
	// Results are committed to the history in id order no matter the
	// order they arrive in.
	ID uint64
	// ParamU is the canonical (normalized) point.
	ParamU []float64
	// Params is the decoded parameter assignment to evaluate.
	Params map[string]interface{}
}

// pendingEntry is one ledger slot: a proposal that has been issued but
// not yet committed to the history. Entries are kept in id (issue)
// order; results may arrive out of order and are buffered here until
// every earlier proposal has a result too, which makes the committed
// history — and therefore every later surrogate fit — a function of
// the result *set*, not the arrival order.
type pendingEntry struct {
	id       uint64
	u        []float64
	lie      float64 // constant-liar value fixed at proposal time
	observed bool
	y        float64
	failed   bool
	errMsg   string
}

// sample converts a committed ledger entry into its history sample.
func (s *Session) ledgerSample(e *pendingEntry) Sample {
	smp := Sample{
		ParamU:   e.u,
		Params:   s.problem.ParamSpace.Decode(e.u),
		Proposer: s.proposer.Name(),
	}
	if e.failed {
		smp.Failed = true
		smp.Err = e.errMsg
	} else {
		smp.Y = e.y
	}
	return smp
}

// lieSample is the stand-in a still-unobserved entry contributes to the
// scratch history a batch is proposed against. Under the constant-liar
// strategy it is a fake success at the lie value (visible to fits);
// under local penalization it is a failed placeholder — invisible to
// fits (History.XY skips failures) but visible to the dedup check
// (History.Contains does not), so the same point is never re-proposed.
func (s *Session) lieSample(e *pendingEntry) Sample {
	if s.opts.Batch.Strategy == BatchLocalPenalization {
		return Sample{ParamU: e.u, Failed: true, Err: "pending proposal", Proposer: s.proposer.Name()}
	}
	return Sample{ParamU: e.u, Y: e.lie, Proposer: s.proposer.Name()}
}

// scratchHistory is the committed history plus every ledger entry in id
// order: observed-but-uncommitted entries contribute their real result,
// unobserved ones their strategy stand-in.
func (s *Session) scratchHistory() *History {
	scratch := &History{Samples: make([]Sample, 0, len(s.h.Samples)+len(s.ledger))}
	scratch.Samples = append(scratch.Samples, s.h.Samples...)
	for _, e := range s.ledger {
		if e.observed {
			scratch.Append(s.ledgerSample(e))
		} else {
			scratch.Append(s.lieSample(e))
		}
	}
	return scratch
}

// unobservedPoints are the normalized points of every pending proposal
// without a result — the set local penalization pushes away from.
func (s *Session) unobservedPoints() [][]float64 {
	var pts [][]float64
	for _, e := range s.ledger {
		if !e.observed {
			pts = append(pts, e.u)
		}
	}
	return pts
}

// lpPenalty builds the local-penalization factor around the pending
// points: φ(u) = Π_j (1 − exp(−‖u−x_j‖²/(2r²))), 0 at a pending point
// and →1 far from all of them. Returns nil when nothing is pending.
func lpPenalty(pending [][]float64, radius float64) func(u []float64) float64 {
	if len(pending) == 0 {
		return nil
	}
	inv := 1 / (2 * radius * radius)
	return func(u []float64) float64 {
		p := 1.0
		for _, x := range pending {
			d2 := 0.0
			for i := range x {
				d := u[i] - x[i]
				d2 += d * d
			}
			p *= 1 - math.Exp(-d2*inv)
		}
		return p
	}
}

// ProposeBatch is ProposeBatchContext with a background context.
func (s *Session) ProposeBatch(k int) ([]PendingProposal, error) {
	return s.ProposeBatchContext(context.Background(), k)
}

// ProposeBatchContext issues up to k new proposals on top of whatever
// is already pending, so a crowd of workers can evaluate several points
// of the same session concurrently. k is clamped to the remaining
// budget minus the points already in flight; when nothing remains it
// returns ErrBudgetExhausted (wrapped).
//
// Each proposal is generated against a scratch history that contains
// the committed samples, the uncommitted results, and a stand-in for
// every still-unobserved proposal (see BatchConfig), so the k points
// spread out instead of collapsing onto the acquisition optimum.
//
// Proposals consume randomness at issue time only; observing results
// consumes none. Together with the id-ordered commit rule of
// ObserveProposal this makes the session deterministic in the result
// set: any arrival order of the same results yields bit-identical
// history, RNG state, and next batch.
//
// Cancellation between points keeps the proposals already issued (they
// are in the ledger and will be returned again by PendingProposals) and
// returns the short batch with the context's error.
func (s *Session) ProposeBatchContext(rctx context.Context, k int) ([]PendingProposal, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive batch size %d", k)
	}
	room := s.opts.Budget - s.iter - len(s.ledger)
	if room <= 0 {
		return nil, fmt.Errorf("core: session budget of %d consumed or in flight: %w",
			s.opts.Budget, ErrBudgetExhausted)
	}
	if k > room {
		k = room
	}
	out := make([]PendingProposal, 0, k)
	for j := 0; j < k; j++ {
		if err := rctx.Err(); err != nil {
			return out, fmt.Errorf("core: batch proposal cancelled after %d of %d points: %w", j, k, err)
		}
		e, err := s.proposeOne(rctx)
		if err != nil {
			return out, err
		}
		out = append(out, PendingProposal{
			ID:     e.id,
			ParamU: e.u,
			Params: s.problem.ParamSpace.Decode(e.u),
		})
	}
	return out, nil
}

// proposeOne generates the next proposal against the current scratch
// history and appends it to the ledger.
func (s *Session) proposeOne(rctx context.Context) (*pendingEntry, error) {
	scratch := s.scratchHistory()
	search := s.search
	if s.opts.Batch.Strategy == BatchLocalPenalization {
		search.Penalty = lpPenalty(s.unobservedPoints(), s.opts.Batch.LPRadius)
	}
	ctx := &ProposeContext{
		Problem: s.problem,
		Task:    s.task,
		History: scratch,
		Rng:     s.rng,
		Iter:    s.iter + len(s.ledger),
		Budget:  s.opts.Budget,
		Search:  search,
		Stats:   &s.stats,
		Logf:    s.opts.Logf,
		Ctx:     rctx,
		Timers:  s.timers,
	}
	proposeStart := time.Now()
	u, err := s.proposer.Propose(ctx)
	s.timers.ObservePropose(time.Since(proposeStart))
	if err != nil {
		return nil, fmt.Errorf("core: proposer %s failed at iteration %d: %w", s.proposer.Name(), ctx.Iter, err)
	}
	if len(u) != s.problem.ParamSpace.Dim() {
		return nil, fmt.Errorf("core: proposer %s returned a %d-dim point, want %d",
			s.proposer.Name(), len(u), s.problem.ParamSpace.Dim())
	}
	u = s.problem.ParamSpace.Canonicalize(u)
	// Proposers that do not consult the history (pure space-filling)
	// can repeat a pending point; retry with random draws before
	// accepting the duplicate (exhausted discrete spaces must not hang).
	if scratch.Contains(u, s.search.DedupTol) {
		for i := 0; i < 64; i++ {
			c := s.problem.ParamSpace.Canonicalize(RandomPoint(s.problem.ParamSpace, s.rng))
			if s.search.Feasible != nil && !s.search.Feasible(c) {
				continue
			}
			if !scratch.Contains(c, s.search.DedupTol) {
				u = c
				break
			}
		}
	}
	e := &pendingEntry{id: s.nextPropID, u: u, lie: lieValue(scratch)}
	s.nextPropID++
	s.ledger = append(s.ledger, e)
	return e, nil
}

// ObserveProposal records the result for proposal id, wherever it sits
// in the batch. The result is buffered in the ledger and committed to
// the history only once every earlier proposal has a result too —
// commits happen strictly in id order, so the history (and every
// surrogate fit after it) is bit-identical no matter the order results
// arrive in.
//
// Out-of-order-safe by construction: a result for a proposal that was
// already committed returns ErrStaleObservation, a second result for a
// still-pending one returns ErrDuplicateObservation (the first stands),
// and an id the session never issued returns ErrUnknownProposal. All
// three leave the session untouched.
func (s *Session) ObserveProposal(id uint64, y float64, evalErr error) error {
	if id == 0 || id >= s.nextPropID {
		return fmt.Errorf("core: proposal id %d (next unissued is %d): %w", id, s.nextPropID, ErrUnknownProposal)
	}
	var e *pendingEntry
	for _, le := range s.ledger {
		if le.id == id {
			e = le
			break
		}
	}
	if e == nil {
		return fmt.Errorf("core: proposal id %d: %w", id, ErrStaleObservation)
	}
	if e.observed {
		return fmt.Errorf("core: proposal id %d: %w", id, ErrDuplicateObservation)
	}
	switch {
	case evalErr != nil:
		e.failed = true
		e.errMsg = evalErr.Error()
	case math.IsNaN(y) || math.IsInf(y, 0):
		// Mirror Observe: a non-finite "success" is a failure in
		// disguise, kept out of every surrogate fit.
		e.failed = true
		e.errMsg = fmt.Sprintf("non-finite objective %v", y)
	default:
		e.y = y
	}
	e.observed = true
	s.commitObserved(true)
	return nil
}

// commitObserved pops the observed prefix of the ledger into the
// history. notify controls whether OnSample fires (live observations
// do; checkpoint restoration replays silently).
func (s *Session) commitObserved(notify bool) {
	for len(s.ledger) > 0 && s.ledger[0].observed {
		e := s.ledger[0]
		s.ledger = s.ledger[1:]
		smp := s.ledgerSample(e)
		s.h.Append(smp)
		if notify && s.opts.OnSample != nil {
			s.opts.OnSample(s.iter, smp)
		}
		s.iter++
	}
}

// PendingProposals returns the proposals still awaiting a result, in id
// order. After a resume this is the work to hand back out to workers.
func (s *Session) PendingProposals() []PendingProposal {
	var out []PendingProposal
	for _, e := range s.ledger {
		if e.observed {
			continue
		}
		out = append(out, PendingProposal{
			ID:     e.id,
			ParamU: e.u,
			Params: s.problem.ParamSpace.Decode(e.u),
		})
	}
	return out
}

// InFlight returns the number of proposals issued but not yet committed
// (observed-but-buffered entries count: their budget is spoken for).
func (s *Session) InFlight() int { return len(s.ledger) }
