package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gptunecrowd/internal/obs"
)

// SessionOptions configures a checkpointable tuning session.
type SessionOptions struct {
	Budget int   // total function evaluations
	Seed   int64 // RNG seed; runs are deterministic given the seed
	Search SearchOptions
	// OnSample observes every recorded evaluation.
	OnSample func(i int, s Sample)
	// Logf, when set, receives degradation log lines (fit failures,
	// robust-ingestion notes). Diagnostics only — never part of the
	// checkpointed state.
	Logf func(format string, args ...interface{})
	// Metrics, when non-nil, receives the tuner_* stage histograms
	// (fit, search, propose, evaluate durations). Diagnostics only —
	// never part of the checkpointed state.
	Metrics *obs.Registry
	// Batch configures how ProposeBatch spreads concurrent proposals
	// (constant liar vs local penalization). The zero value is the
	// constant-liar default.
	Batch BatchConfig
}

// Session is a suspendable tuning run: the propose → evaluate → record
// loop of RunLoop, decomposed into explicit Propose/Observe steps whose
// full state (history, iteration, RNG, outstanding proposal) can be
// serialized with Checkpoint and restored with ResumeSession, resuming
// bit-identically to an uninterrupted run.
//
// Decoupling Propose from Observe is also what lets a driver hand
// individual function evaluations to remote workers: call Propose, ship
// the configuration out, and Observe the result whenever it lands.
//
// The surrogate (GP/LCM hyperparameters, evaluated points) is refit
// deterministically from the history and the RNG stream on every
// Propose, so the checkpoint never stores model weights — history +
// RNG state + iteration is the complete search state.
type Session struct {
	problem  *Problem
	task     map[string]interface{}
	proposer Proposer
	opts     SessionOptions
	search   SearchOptions

	src  *CheckpointableSource
	rng  *rand.Rand
	h    *History
	iter int // evaluations committed to the history so far

	// ledger holds issued-but-uncommitted proposals in id order; see
	// batchsession.go. The single-proposal Propose/Observe pair is the
	// k=1 special case of the same machinery.
	ledger     []*pendingEntry
	nextPropID uint64

	stats  RobustStats
	timers *Timers
}

// NewSession validates the problem and returns a fresh session. Unlike
// RunLoop, the problem's Evaluator may be nil as long as only
// Propose/Observe (not Step/Run) are used — the remote-evaluation mode.
func NewSession(p *Problem, task map[string]interface{}, proposer Proposer, opts SessionOptions) (*Session, error) {
	if err := validateSessionProblem(p); err != nil {
		return nil, err
	}
	if proposer == nil {
		return nil, errors.New("core: session needs a proposer")
	}
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("core: non-positive budget %d", opts.Budget)
	}
	if err := opts.Batch.validate(); err != nil {
		return nil, err
	}
	s := &Session{
		problem:    p,
		task:       task,
		proposer:   proposer,
		opts:       opts,
		h:          &History{},
		src:        NewCheckpointableSource(opts.Seed),
		timers:     NewTimers(opts.Metrics),
		nextPropID: 1,
	}
	s.rng = rand.New(s.src)
	s.search = opts.Search
	if len(p.Constraints) > 0 {
		s.search.Feasible = func(u []float64) bool {
			return p.Feasible(task, p.ParamSpace.Decode(u))
		}
	}
	return s, nil
}

// validateSessionProblem is Problem.Validate minus the evaluator
// requirement (remote sessions evaluate elsewhere).
func validateSessionProblem(p *Problem) error {
	if p == nil {
		return errors.New("core: nil problem")
	}
	if p.Name == "" {
		return errors.New("core: problem needs a name")
	}
	if p.ParamSpace == nil || p.ParamSpace.Dim() == 0 {
		return fmt.Errorf("core: problem %q needs a non-empty parameter space", p.Name)
	}
	return nil
}

// Done reports whether the budget is consumed.
func (s *Session) Done() bool { return s.iter >= s.opts.Budget }

// Iter returns the number of recorded evaluations.
func (s *Session) Iter() int { return s.iter }

// Budget returns the session's evaluation budget.
func (s *Session) Budget() int { return s.opts.Budget }

// History returns the session's evaluation history (live, not a copy).
func (s *Session) History() *History { return s.h }

// Stats returns the session's robustness counters: surrogate-fit
// failures survived, space-filling fallbacks, and the most recent
// robust-ingestion gauges. Diagnostics only — not checkpointed, so a
// resumed session starts its counters at zero.
func (s *Session) Stats() RobustStats { return s.stats }

// Propose returns the next configuration to evaluate. It is idempotent
// while a proposal is outstanding: calling it again (e.g. after a
// resume) returns the same configuration without consuming randomness.
func (s *Session) Propose() (map[string]interface{}, error) {
	return s.ProposeContext(context.Background())
}

// ProposeContext is Propose with cooperative cancellation: the context
// is checked between the proposal's stages (before the surrogate fit,
// between fit and acquisition search), so a cancelled context stops the
// proposal without corrupting the session — no randomness beyond the
// interrupted stage is consumed and Checkpoint stays valid.
//
// Propose/Observe are the k=1 special case of the batch ledger: an
// outstanding unobserved proposal (from either path) is returned as-is.
func (s *Session) ProposeContext(rctx context.Context) (map[string]interface{}, error) {
	for _, e := range s.ledger {
		if !e.observed {
			return s.problem.ParamSpace.Decode(e.u), nil
		}
	}
	if s.iter+len(s.ledger) >= s.opts.Budget {
		return nil, fmt.Errorf("core: session budget of %d consumed: %w", s.opts.Budget, ErrBudgetExhausted)
	}
	if err := rctx.Err(); err != nil {
		return nil, fmt.Errorf("core: proposal cancelled at iteration %d: %w", s.iter, err)
	}
	e, err := s.proposeOne(rctx)
	if err != nil {
		return nil, err
	}
	return s.problem.ParamSpace.Decode(e.u), nil
}

// Observe records the result of the oldest outstanding proposal. Pass a
// non-nil evalErr to record a failed evaluation (it consumes budget but
// is invisible to surrogate fits, like in RunLoop). Drivers juggling a
// whole batch report by id with ObserveProposal instead.
func (s *Session) Observe(y float64, evalErr error) error {
	for _, e := range s.ledger {
		if !e.observed {
			return s.ObserveProposal(e.id, y, evalErr)
		}
	}
	return errors.New("core: Observe without an outstanding proposal")
}

// Step proposes the next point and evaluates it inline with the
// problem's Evaluator.
func (s *Session) Step() error {
	return s.StepContext(context.Background())
}

// StepContext is Step with cooperative cancellation. Cancellation
// during the proposal stops between stages; cancellation during the
// evaluation abandons the in-flight Evaluate call (its goroutine may
// finish in the background, but its result is discarded) and leaves the
// proposal outstanding, so a resumed session re-evaluates the same
// point instead of losing it.
func (s *Session) StepContext(ctx context.Context) error {
	if s.problem.Evaluator == nil {
		return fmt.Errorf("core: problem %q has no evaluator; use Propose/Observe", s.problem.Name)
	}
	params, err := s.ProposeContext(ctx)
	if err != nil {
		return err
	}
	evalStart := time.Now()
	y, evalErr, err := s.evaluate(ctx, params)
	s.timers.ObserveEvaluate(time.Since(evalStart))
	if err != nil {
		return err
	}
	return s.Observe(y, evalErr)
}

// evaluate runs the problem's Evaluator, racing it against the context
// so a hung or slow evaluation cannot outlive a cancelled session. The
// channel is buffered: a late result is dropped, not leaked on.
func (s *Session) evaluate(ctx context.Context, params map[string]interface{}) (float64, error, error) {
	if ctx.Done() == nil {
		// No cancellation possible (context.Background()): evaluate
		// inline and skip the goroutine handoff.
		y, evalErr := s.problem.Evaluator.Evaluate(s.task, params)
		return y, evalErr, nil
	}
	type result struct {
		y   float64
		err error
	}
	ch := make(chan result, 1)
	go func() {
		y, evalErr := s.problem.Evaluator.Evaluate(s.task, params)
		ch <- result{y, evalErr}
	}()
	select {
	case r := <-ch:
		return r.y, r.err, nil
	case <-ctx.Done():
		return 0, nil, fmt.Errorf("core: evaluation cancelled at iteration %d: %w", s.iter, ctx.Err())
	}
}

// Run steps until the budget is consumed and returns the history. A
// session that was partially run (or resumed from a checkpoint) simply
// continues.
func (s *Session) Run() (*History, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation; on cancellation it
// returns the history accumulated so far with the wrapped context
// error, and the session remains checkpointable and resumable.
func (s *Session) RunContext(ctx context.Context) (*History, error) {
	for !s.Done() {
		if err := s.StepContext(ctx); err != nil {
			return s.h, err
		}
	}
	return s.h, nil
}

// sessionCheckpoint is the serialized session state. Decoded parameter
// maps are not stored: they are reconstructed from the canonical points
// via Space.Decode, which restores the exact typed values and keeps the
// checkpoint compact.
type sessionCheckpoint struct {
	Version  int    `json:"version"`
	Problem  string `json:"problem"`
	Proposer string `json:"proposer"`
	Budget   int    `json:"budget"`
	Seed     int64  `json:"seed"`
	Iter     int    `json:"iter"`
	RNGState uint64 `json:"rng_state"`
	// Pending is the version-1 single outstanding proposal; version-2
	// checkpoints carry the full ledger instead.
	Pending []float64          `json:"pending,omitempty"`
	Samples []checkpointSample `json:"samples,omitempty"`
	// Ledger holds the issued-but-uncommitted batch proposals (version
	// 2), in strictly increasing id order.
	Ledger         []checkpointPending `json:"ledger,omitempty"`
	NextProposalID uint64              `json:"next_proposal_id,omitempty"`
	// ProposerState carries the opaque private state of a stateful
	// proposer (e.g. the surrogate pool's bandit arm statistics), when
	// the proposer implements StatefulProposer. Absent for stateless
	// proposers and in pre-pool checkpoints; readers that do not
	// understand it ignore it.
	ProposerState json.RawMessage `json:"proposer_state,omitempty"`
}

// StatefulProposer is a Proposer whose decisions depend on state that
// is not a pure function of the history and the RNG stream (the
// surrogate pool's bandit statistics). Sessions serialize that state
// into checkpoints and restore it on resume, so a resumed run remains
// bit-identical to an uninterrupted one.
type StatefulProposer interface {
	Proposer
	// StateCheckpoint serializes the proposer's private state.
	StateCheckpoint() ([]byte, error)
	// RestoreState restores state serialized by StateCheckpoint.
	RestoreState(data []byte) error
}

type checkpointSample struct {
	U        []float64 `json:"u"`
	Y        float64   `json:"y"`
	Failed   bool      `json:"failed,omitempty"`
	Err      string    `json:"err,omitempty"`
	Proposer string    `json:"proposer,omitempty"`
}

// checkpointPending serializes one ledger entry: the proposal, its
// constant-liar stand-in, and the buffered result when one has arrived
// but earlier proposals are still outstanding.
type checkpointPending struct {
	ID       uint64    `json:"id"`
	U        []float64 `json:"u"`
	Lie      float64   `json:"lie"`
	Observed bool      `json:"observed,omitempty"`
	Y        float64   `json:"y,omitempty"`
	Failed   bool      `json:"failed,omitempty"`
	Err      string    `json:"err,omitempty"`
}

const sessionCheckpointVersion = 2

// Checkpoint serializes the session's complete state — including the
// pending-proposal ledger, so a resumed session can hand the same batch
// back out and keep accepting results under the original ids. The
// session stays usable; checkpointing is a read-only operation.
func (s *Session) Checkpoint() ([]byte, error) {
	cp := sessionCheckpoint{
		Version:        sessionCheckpointVersion,
		Problem:        s.problem.Name,
		Proposer:       s.proposer.Name(),
		Budget:         s.opts.Budget,
		Seed:           s.opts.Seed,
		Iter:           s.iter,
		RNGState:       s.src.State(),
		NextProposalID: s.nextPropID,
	}
	cp.Samples = make([]checkpointSample, len(s.h.Samples))
	for i, smp := range s.h.Samples {
		cp.Samples[i] = checkpointSample{
			U: smp.ParamU, Y: smp.Y, Failed: smp.Failed, Err: smp.Err, Proposer: smp.Proposer,
		}
	}
	if len(s.ledger) > 0 {
		cp.Ledger = make([]checkpointPending, len(s.ledger))
		for i, e := range s.ledger {
			cp.Ledger[i] = checkpointPending{
				ID: e.id, U: e.u, Lie: e.lie, Observed: e.observed,
				Y: e.y, Failed: e.failed, Err: e.errMsg,
			}
		}
	}
	if sp, ok := s.proposer.(StatefulProposer); ok {
		state, err := sp.StateCheckpoint()
		if err != nil {
			return nil, fmt.Errorf("core: proposer %s state checkpoint: %w", s.proposer.Name(), err)
		}
		cp.ProposerState = state
	}
	return json.Marshal(cp)
}

// ResumeSession restores a session from a checkpoint. The problem and
// proposer must match the ones the checkpoint was taken with (compared
// by name); opts.Budget, when larger than the checkpoint's, extends the
// run — otherwise the checkpointed budget is kept, so passing the
// original options verbatim resumes exactly.
//
// Resume is bit-identical for proposers whose state is a deterministic
// function of the history and the RNG stream (the GP tuner and every
// stateless TLA algorithm): the continued run produces exactly the
// samples the uninterrupted run would have.
func ResumeSession(p *Problem, task map[string]interface{}, proposer Proposer, opts SessionOptions, checkpoint []byte) (*Session, error) {
	var cp sessionCheckpoint
	if err := json.Unmarshal(checkpoint, &cp); err != nil {
		return nil, fmt.Errorf("core: bad session checkpoint: %w", err)
	}
	if cp.Version != 1 && cp.Version != sessionCheckpointVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d", cp.Version)
	}
	if err := validateSessionProblem(p); err != nil {
		return nil, err
	}
	if cp.Problem != "" && cp.Problem != p.Name {
		return nil, fmt.Errorf("core: checkpoint is for problem %q, not %q", cp.Problem, p.Name)
	}
	if proposer == nil {
		return nil, errors.New("core: session needs a proposer")
	}
	if cp.Proposer != "" && cp.Proposer != proposer.Name() {
		return nil, fmt.Errorf("core: checkpoint was taken with proposer %q, not %q", cp.Proposer, proposer.Name())
	}
	if opts.Budget < cp.Budget {
		opts.Budget = cp.Budget
	}
	opts.Seed = cp.Seed
	s, err := NewSession(p, task, proposer, opts)
	if err != nil {
		return nil, err
	}
	dim := p.ParamSpace.Dim()
	for i, smp := range cp.Samples {
		if len(smp.U) != dim {
			return nil, fmt.Errorf("core: checkpoint sample %d has dimension %d, want %d", i, len(smp.U), dim)
		}
		// Checkpoints can arrive through the crowd task pool, so their
		// numeric content is untrusted: a NaN coordinate would corrupt
		// Decode and every later fit.
		for d, u := range smp.U {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				return nil, fmt.Errorf("core: checkpoint sample %d has non-finite coordinate %v at dim %d", i, u, d)
			}
		}
		if !smp.Failed && (math.IsNaN(smp.Y) || math.IsInf(smp.Y, 0)) {
			return nil, fmt.Errorf("core: checkpoint sample %d has non-finite objective %v", i, smp.Y)
		}
		s.h.Append(Sample{
			ParamU:   smp.U,
			Params:   p.ParamSpace.Decode(smp.U),
			Y:        smp.Y,
			Failed:   smp.Failed,
			Err:      smp.Err,
			Proposer: smp.Proposer,
		})
	}
	if cp.Iter != len(cp.Samples) {
		return nil, fmt.Errorf("core: checkpoint iter %d does not match %d samples", cp.Iter, len(cp.Samples))
	}
	s.iter = cp.Iter
	if cp.Version == 1 && cp.Pending != nil {
		// A v1 checkpoint's single outstanding proposal becomes a
		// one-entry ledger.
		cp.Ledger = []checkpointPending{{ID: 1, U: cp.Pending, Lie: lieValue(s.h)}}
		if cp.NextProposalID == 0 {
			cp.NextProposalID = 2
		}
	}
	var maxID uint64
	for i, pe := range cp.Ledger {
		if pe.ID == 0 || pe.ID <= maxID {
			return nil, fmt.Errorf("core: checkpoint ledger entry %d has non-increasing id %d", i, pe.ID)
		}
		maxID = pe.ID
		if len(pe.U) != dim {
			return nil, fmt.Errorf("core: checkpoint ledger entry %d has dimension %d, want %d", i, len(pe.U), dim)
		}
		for d, u := range pe.U {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				return nil, fmt.Errorf("core: checkpoint ledger entry %d has non-finite coordinate %v at dim %d", i, u, d)
			}
		}
		if math.IsNaN(pe.Lie) || math.IsInf(pe.Lie, 0) {
			return nil, fmt.Errorf("core: checkpoint ledger entry %d has non-finite lie %v", i, pe.Lie)
		}
		if pe.Observed && !pe.Failed && (math.IsNaN(pe.Y) || math.IsInf(pe.Y, 0)) {
			return nil, fmt.Errorf("core: checkpoint ledger entry %d has non-finite objective %v", i, pe.Y)
		}
		s.ledger = append(s.ledger, &pendingEntry{
			id: pe.ID, u: pe.U, lie: pe.Lie, observed: pe.Observed,
			y: pe.Y, failed: pe.Failed, errMsg: pe.Err,
		})
	}
	s.nextPropID = maxID + 1
	if cp.NextProposalID > s.nextPropID {
		s.nextPropID = cp.NextProposalID
	}
	if len(cp.ProposerState) > 0 {
		if sp, ok := proposer.(StatefulProposer); ok {
			if err := sp.RestoreState(cp.ProposerState); err != nil {
				return nil, fmt.Errorf("core: proposer %s state restore: %w", proposer.Name(), err)
			}
		}
	}
	// A checkpoint taken mid-commit (or hand-edited) may carry an
	// observed prefix; fold it into the history silently — restoration
	// is reconstruction, not a live observation.
	s.commitObserved(false)
	s.src.SetState(cp.RNGState)
	return s, nil
}
