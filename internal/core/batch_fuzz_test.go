package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// fuzzProposer is a cheap deterministic proposer (no surrogate fits) so
// the fuzzer spends its budget on ledger state transitions, not GP
// algebra.
type fuzzProposer struct{}

func (fuzzProposer) Name() string { return "fuzz-space-fill" }

func (fuzzProposer) Propose(ctx *ProposeContext) ([]float64, error) {
	return RandomPoint(ctx.Problem.ParamSpace, ctx.Rng), nil
}

// FuzzBatchObserve drives the pending-proposal ledger with an arbitrary
// op stream — proposals, in-order / shuffled / duplicated / stale /
// unknown / non-finite observations, and mid-stream checkpoint-resume —
// and asserts the ledger invariants after every op:
//
//   - committed + in-flight never exceeds the budget;
//   - ledger ids are strictly increasing and history length equals Iter;
//   - ObserveProposal never panics and fails only with its three
//     documented sentinels;
//   - a checkpoint taken at any point round-trips bit-identically.
func FuzzBatchObserve(f *testing.F) {
	// Seeds cover the interesting shapes: plain in-order ingestion,
	// shuffled arrival, duplicated and stale ids, non-finite objectives,
	// and a mid-stream resume. Mirrored in testdata/fuzz/FuzzBatchObserve.
	f.Add([]byte{0, 3, 1, 0, 1, 1, 1, 0})
	f.Add([]byte{0, 3, 1, 2, 1, 0, 2, 1, 2, 1, 1, 1})
	f.Add([]byte{0, 2, 2, 7, 2, 0, 2, 200, 1, 5})
	f.Add([]byte{0, 3, 3, 0, 3, 1, 3, 2, 0, 2})
	f.Add([]byte{0, 3, 1, 1, 4, 0, 1, 0, 4, 0, 1, 0, 0, 1})
	f.Add([]byte{1, 0, 3, 1, 2, 1, 0, 0, 3, 4, 0, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		p := quadProblem(t)
		cfg := BatchConfig{Strategy: BatchConstantLiar}
		if data[0]%2 == 1 {
			cfg.Strategy = BatchLocalPenalization
		}
		const budget = 12
		opts := SessionOptions{Budget: budget, Seed: 5, Batch: cfg}
		s, err := NewSession(p, nil, fuzzProposer{}, opts)
		if err != nil {
			t.Fatal(err)
		}

		observe := func(id uint64, y float64, evalErr error) {
			err := s.ObserveProposal(id, y, evalErr)
			if err != nil &&
				!errors.Is(err, ErrStaleObservation) &&
				!errors.Is(err, ErrDuplicateObservation) &&
				!errors.Is(err, ErrUnknownProposal) {
				t.Fatalf("observe %d: unexpected error %v", id, err)
			}
		}
		check := func() {
			if s.Iter()+s.InFlight() > budget {
				t.Fatalf("budget overrun: %d committed + %d in flight > %d",
					s.Iter(), s.InFlight(), budget)
			}
			if s.History().Len() != s.Iter() {
				t.Fatalf("history len %d != iter %d", s.History().Len(), s.Iter())
			}
			var prev uint64
			for _, e := range s.ledger {
				if e.id <= prev {
					t.Fatalf("ledger ids not strictly increasing: %d after %d", e.id, prev)
				}
				prev = e.id
			}
		}

		stream := data[1:]
		for j := 0; j+1 < len(stream); j += 2 {
			op, arg := stream[j], stream[j+1]
			switch op % 5 {
			case 0: // propose a small batch
				k := 1 + int(arg%4)
				if _, err := s.ProposeBatch(k); err != nil && !errors.Is(err, ErrBudgetExhausted) {
					t.Fatalf("propose %d: %v", k, err)
				}
			case 1: // observe a pending proposal (arbitrary position)
				pend := s.PendingProposals()
				if len(pend) == 0 {
					continue
				}
				p := pend[int(arg)%len(pend)]
				observe(p.ID, 1+float64(arg)/7, nil)
			case 2: // arbitrary id: unknown, stale or pending
				observe(uint64(arg), float64(arg), nil)
			case 3: // failures: eval errors and non-finite objectives
				pend := s.PendingProposals()
				if len(pend) == 0 {
					continue
				}
				p := pend[int(arg)%len(pend)]
				switch arg % 3 {
				case 0:
					observe(p.ID, 0, errors.New("fuzz failure"))
				case 1:
					observe(p.ID, math.NaN(), nil)
				default:
					observe(p.ID, math.Inf(1), nil)
				}
			case 4: // checkpoint round-trip mid-stream
				cp, err := s.Checkpoint()
				if err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
				r, err := ResumeSession(p, nil, fuzzProposer{}, opts, cp)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				cp2, err := r.Checkpoint()
				if err != nil {
					t.Fatalf("re-checkpoint: %v", err)
				}
				if !bytes.Equal(cp, cp2) {
					t.Fatalf("checkpoint not stable across resume:\n%s\nvs\n%s", cp, cp2)
				}
				s = r
			}
			check()
		}

		// Final round-trip: pending batches must survive serialization.
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		r, err := ResumeSession(p, nil, fuzzProposer{}, opts, cp)
		if err != nil {
			t.Fatal(err)
		}
		if r.InFlight() != s.InFlight() || r.Iter() != s.Iter() {
			t.Fatalf("resume drifted: iter %d/%d, in-flight %d/%d",
				r.Iter(), s.Iter(), r.InFlight(), s.InFlight())
		}
	})
}
