package core

// Predictor is the minimal posterior-model interface the acquisition
// machinery consumes: the GP, LCM-slice and combined transfer-learning
// models all satisfy it. Before the surrogate-pool redesign this
// interface was called Surrogate; Surrogate is now the full
// fit/observe/predict lifecycle below, and every Surrogate is a
// Predictor.
type Predictor interface {
	// Predict returns the posterior mean and standard deviation at x.
	Predict(x []float64) (mean, std float64)
}

// BatchPredictor is a Predictor with a vectorized prediction path.
// SearchNext scores its candidate prescreen pool through one
// PredictBatchInto call instead of per-point Predict calls when the
// model provides it.
type BatchPredictor interface {
	Predictor
	// PredictBatchInto evaluates Predict over the rows of X into
	// caller-owned means/stds slices (len(X) each). Each output slot is
	// written by exactly one worker, so results are bit-identical for
	// every worker count.
	PredictBatchInto(X [][]float64, means, stds []float64, workers int)
}

// Surrogate is a first-class posterior model with a full lifecycle:
// fit on a history, absorb single observations incrementally, predict
// (pointwise and batched), and report its identity and fit cost so a
// budget-aware selector can choose between models. The exact GP, the
// LCM slice, the Gaussian-copula transfer model and the sparse
// inducing-point GP all satisfy it through the adapters in
// internal/surrogate.
type Surrogate interface {
	BatchPredictor
	// Fit (re)trains the model on inputs X (rows in the unit hypercube)
	// and targets y, replacing any previous state.
	Fit(X [][]float64, Y []float64) error
	// Observe folds one additional observation into the fitted model.
	// Implementations without an incremental path may refit; callers
	// treat an error as "refit me from scratch".
	Observe(x []float64, y float64) error
	// Name identifies the model family ("gp", "lcm", "copula", "sgp").
	Name() string
	// Cost estimates the fit cost for n samples in arbitrary but
	// mutually comparable units (the exact GP is n³). The bandit
	// selector uses these estimates — not wall-clock timings — so that
	// selection stays a deterministic function of the history and the
	// RNG stream, which the checkpoint/replay test wall requires.
	Cost(n int) float64
}

// SurrogateFunc adapts a pointwise function to the Predictor interface.
type SurrogateFunc func(x []float64) (float64, float64)

// Predict implements Predictor.
func (f SurrogateFunc) Predict(x []float64) (float64, float64) { return f(x) }

// BatchSurrogateFunc pairs a pointwise function with a batched one, so
// a function-backed model keeps its vectorized path instead of being
// degraded to point-at-a-time Predict calls by the adapter. Batch may
// be nil, in which case the pointwise function is fanned out.
type BatchSurrogateFunc struct {
	Point func(x []float64) (mean, std float64)
	Batch func(X [][]float64, means, stds []float64, workers int)
}

// Predict implements Predictor.
func (f BatchSurrogateFunc) Predict(x []float64) (float64, float64) { return f.Point(x) }

// PredictBatchInto implements BatchPredictor.
func (f BatchSurrogateFunc) PredictBatchInto(X [][]float64, means, stds []float64, workers int) {
	if f.Batch != nil {
		f.Batch(X, means, stds, workers)
		return
	}
	for i, x := range X {
		means[i], stds[i] = f.Point(x)
	}
}
