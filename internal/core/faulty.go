package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// FaultyEvaluator wraps an Evaluator with deterministic fault
// injection: a seeded hash of the evaluated configuration decides, per
// call, whether the evaluation misbehaves and how. It simulates the
// hostile end of a volunteer crowd — NaN results, application errors,
// panics, hangs, and adversarially fabricated measurements — and is the
// workload behind the hostile-crowd end-to-end test.
//
// The rates are cumulative probabilities checked in the order NaN,
// error, panic, hang, adversarial; their sum must be ≤ 1. The same
// configuration always draws the same fault, so runs are reproducible
// given the seed.
type FaultyEvaluator struct {
	Inner Evaluator
	Seed  int64

	NaNRate         float64 // return NaN with no error
	ErrorRate       float64 // return an evaluation error
	PanicRate       float64 // panic mid-evaluation
	HangRate        float64 // block for HangFor before answering
	AdversarialRate float64 // report AdversarialValue instead of the truth

	// AdversarialValue is the fabricated measurement reported on an
	// adversarial draw (default 1e6; for minimization, a large value
	// that cannot masquerade as a new optimum).
	AdversarialValue float64
	// HangFor is how long a hang blocks (default 1 minute — far past
	// any sane evaluation timeout).
	HangFor time.Duration

	// Injection counters, by fault kind.
	NaNs        atomic.Int64
	Errors      atomic.Int64
	Panics      atomic.Int64
	Hangs       atomic.Int64
	Adversarial atomic.Int64
}

// Evaluate implements Evaluator.
func (f *FaultyEvaluator) Evaluate(task, params map[string]interface{}) (float64, error) {
	u := f.roll(task, params)
	edge := f.NaNRate
	if u < edge {
		f.NaNs.Add(1)
		return math.NaN(), nil
	}
	if edge += f.ErrorRate; u < edge {
		f.Errors.Add(1)
		return 0, fmt.Errorf("faulty evaluator: injected failure")
	}
	if edge += f.PanicRate; u < edge {
		f.Panics.Add(1)
		panic("faulty evaluator: injected panic")
	}
	if edge += f.HangRate; u < edge {
		f.Hangs.Add(1)
		d := f.HangFor
		if d <= 0 {
			d = time.Minute
		}
		time.Sleep(d)
		return f.Inner.Evaluate(task, params)
	}
	if edge += f.AdversarialRate; u < edge {
		f.Adversarial.Add(1)
		v := f.AdversarialValue
		if v == 0 {
			v = 1e6
		}
		return v, nil
	}
	return f.Inner.Evaluate(task, params)
}

// roll hashes the (task, params) pair with the seed into [0,1). Map
// iteration order must not leak into the draw, so keys are sorted.
func (f *FaultyEvaluator) roll(task, params map[string]interface{}) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|", f.Seed)
	writeSorted(h, task)
	fmt.Fprint(h, "|")
	writeSorted(h, params)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func writeSorted(h interface{ Write([]byte) (int, error) }, m map[string]interface{}) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%v;", k, m[k])
	}
}
