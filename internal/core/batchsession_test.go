package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// evalU is the deterministic objective the batch tests use: a smooth
// bowl over the normalized cube, computable from ParamU alone so a
// result can be produced for any proposal without decoding.
func evalU(u []float64) float64 {
	s := 0.5
	for i, v := range u {
		d := v - 0.3 - 0.1*float64(i)
		s += d * d
	}
	return s
}

func newBatchSession(t *testing.T, budget int, cfg BatchConfig) *Session {
	t.Helper()
	s, err := NewSession(quadProblem(t), nil, NewGPTuner(), SessionOptions{
		Budget: budget, Seed: 17, Batch: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runBatched drives a session through rounds of ProposeBatch(k),
// ingesting each round's results in the order perm dictates, and
// returns the checkpoint plus the next batch proposed after the last
// round — the two artifacts that must be bit-identical regardless of
// ingestion order.
func runBatched(t *testing.T, cfg BatchConfig, rounds, k int, perm func(n, round int) []int) ([]byte, []PendingProposal) {
	t.Helper()
	s := newBatchSession(t, rounds*k+k, cfg)
	for round := 0; round < rounds; round++ {
		props, err := s.ProposeBatch(k)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(props) != k {
			t.Fatalf("round %d: got %d proposals, want %d", round, len(props), k)
		}
		for _, i := range perm(len(props), round) {
			p := props[i]
			var evalErr error
			y := evalU(p.ParamU)
			if p.ID%5 == 0 {
				// Sprinkle failures so the order-invariance claim covers
				// failed samples too.
				evalErr = fmt.Errorf("synthetic failure for proposal %d", p.ID)
			}
			if err := s.ObserveProposal(p.ID, y, evalErr); err != nil {
				t.Fatalf("observe %d: %v", p.ID, err)
			}
		}
		if s.InFlight() != 0 {
			t.Fatalf("round %d: %d still in flight after full ingestion", round, s.InFlight())
		}
	}
	next, err := s.ProposeBatch(k)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return cp, next
}

func proposalsEqual(a, b []PendingProposal) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || len(a[i].ParamU) != len(b[i].ParamU) {
			return false
		}
		for d := range a[i].ParamU {
			if a[i].ParamU[d] != b[i].ParamU[d] {
				return false
			}
		}
	}
	return true
}

// TestBatchIngestionOrderInvariant is the determinism property test:
// feeding the same result set in id order, reversed, or shuffled must
// leave bit-identical session state (checkpoint bytes) and produce a
// bit-identical next batch — for both batch strategies and for both the
// serial and the fanned-out numeric engine.
func TestBatchIngestionOrderInvariant(t *testing.T) {
	identity := func(n, _ int) []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	reversed := func(n, _ int) []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = n - 1 - i
		}
		return idx
	}
	shuffled := func(n, round int) []int {
		idx := identity(n, round)
		rng := rand.New(rand.NewSource(int64(100 + round)))
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		return idx
	}

	for _, workers := range []string{"1", "4"} {
		for _, strategy := range []string{BatchConstantLiar, BatchLocalPenalization} {
			t.Run(fmt.Sprintf("workers=%s/%s", workers, strategy), func(t *testing.T) {
				t.Setenv("GPTUNE_WORKERS", workers)
				cfg := BatchConfig{Strategy: strategy}
				cpWant, nextWant := runBatched(t, cfg, 3, 4, identity)
				for name, perm := range map[string]func(int, int) []int{
					"reversed": reversed, "shuffled": shuffled,
				} {
					cp, next := runBatched(t, cfg, 3, 4, perm)
					if !bytes.Equal(cpWant, cp) {
						t.Errorf("%s ingestion: checkpoint differs from in-order", name)
					}
					if !proposalsEqual(nextWant, next) {
						t.Errorf("%s ingestion: next batch differs from in-order", name)
					}
				}
			})
		}
	}
}

// TestBatchWorkerCountInvariant pins the cross-worker-count half of the
// determinism contract: the same schedule under GPTUNE_WORKERS=1 and =4
// yields bit-identical checkpoints.
func TestBatchWorkerCountInvariant(t *testing.T) {
	identity := func(n, _ int) []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	run := func(workers string) []byte {
		var cp []byte
		t.Run("w"+workers, func(t *testing.T) {
			t.Setenv("GPTUNE_WORKERS", workers)
			cp, _ = runBatched(t, BatchConfig{}, 3, 4, identity)
		})
		return cp
	}
	if !bytes.Equal(run("1"), run("4")) {
		t.Fatal("checkpoint differs between GPTUNE_WORKERS=1 and =4")
	}
}

// TestBatchProposalsDistinct checks that one batch spreads out: no two
// points of the same batch may collide within the dedup tolerance, for
// either strategy.
func TestBatchProposalsDistinct(t *testing.T) {
	for _, strategy := range []string{BatchConstantLiar, BatchLocalPenalization} {
		t.Run(strategy, func(t *testing.T) {
			s := newBatchSession(t, 16, BatchConfig{Strategy: strategy})
			props, err := s.ProposeBatch(6)
			if err != nil {
				t.Fatal(err)
			}
			for i := range props {
				for j := i + 1; j < len(props); j++ {
					same := true
					for d := range props[i].ParamU {
						diff := props[i].ParamU[d] - props[j].ParamU[d]
						if diff > 1e-9 || diff < -1e-9 {
							same = false
							break
						}
					}
					if same {
						t.Fatalf("proposals %d and %d coincide at %v", props[i].ID, props[j].ID, props[i].ParamU)
					}
				}
			}
		})
	}
}

// TestBatchObserveErrors pins the out-of-order error taxonomy: unknown
// ids, duplicate results for a pending proposal, and late results for a
// committed one each get their own sentinel and leave state untouched.
func TestBatchObserveErrors(t *testing.T) {
	s := newBatchSession(t, 10, BatchConfig{})
	props, err := s.ProposeBatch(3)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.ObserveProposal(99, 1, nil); !errors.Is(err, ErrUnknownProposal) {
		t.Fatalf("unknown id: got %v", err)
	}
	if err := s.ObserveProposal(0, 1, nil); !errors.Is(err, ErrUnknownProposal) {
		t.Fatalf("id 0: got %v", err)
	}

	// Observe the middle proposal out of order: it buffers (nothing
	// commits — proposal 1 has no result yet).
	if err := s.ObserveProposal(props[1].ID, 2.5, nil); err != nil {
		t.Fatal(err)
	}
	if s.Iter() != 0 {
		t.Fatalf("iter %d after buffering an out-of-order result, want 0", s.Iter())
	}
	if err := s.ObserveProposal(props[1].ID, 9.9, nil); !errors.Is(err, ErrDuplicateObservation) {
		t.Fatalf("duplicate: got %v", err)
	}

	// The head result commits both buffered entries in id order.
	if err := s.ObserveProposal(props[0].ID, 1.5, nil); err != nil {
		t.Fatal(err)
	}
	if s.Iter() != 2 {
		t.Fatalf("iter %d after head commit, want 2", s.Iter())
	}
	if got := s.History().Samples[1].Y; got != 2.5 {
		t.Fatalf("buffered result committed with Y=%v, want 2.5 (first result must stand)", got)
	}
	if err := s.ObserveProposal(props[0].ID, 1.5, nil); !errors.Is(err, ErrStaleObservation) {
		t.Fatalf("stale: got %v", err)
	}
	if s.InFlight() != 1 {
		t.Fatalf("in flight %d, want 1", s.InFlight())
	}
}

// TestBatchCheckpointResumePending proves pending batches are
// resumable: checkpoint with buffered and unobserved entries, resume,
// and require the identical pending set and a bit-identical finish.
func TestBatchCheckpointResumePending(t *testing.T) {
	finish := func(s *Session) []byte {
		t.Helper()
		for s.InFlight() > 0 {
			for _, p := range s.PendingProposals() {
				if err := s.ObserveProposal(p.ID, evalU(p.ParamU), nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		cp, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		return cp
	}

	s := newBatchSession(t, 8, BatchConfig{})
	props, err := s.ProposeBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	// Observe the last proposal only: it buffers behind three
	// unobserved entries and must survive the round-trip.
	if err := s.ObserveProposal(props[3].ID, evalU(props[3].ParamU), nil); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	r, err := ResumeSession(quadProblem(t), nil, NewGPTuner(), SessionOptions{Budget: 8, Seed: 17}, cp)
	if err != nil {
		t.Fatal(err)
	}
	want := s.PendingProposals()
	got := r.PendingProposals()
	if !proposalsEqual(want, got) {
		t.Fatalf("pending proposals drifted across resume:\nwant %+v\ngot  %+v", want, got)
	}
	if r.InFlight() != 4 {
		t.Fatalf("in flight %d after resume, want 4", r.InFlight())
	}
	if !bytes.Equal(finish(s), finish(r)) {
		t.Fatal("original and resumed sessions diverged after identical results")
	}
}

// TestBatchCheckpointV1Compat: a version-1 checkpoint (single pending
// point, pre-ledger format) must load into a one-entry ledger.
func TestBatchCheckpointV1Compat(t *testing.T) {
	p := quadProblem(t)
	opts := SessionOptions{Budget: 6, Seed: 3}
	s, err := NewSession(p, nil, NewGPTuner(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Propose(); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 checkpoint into its v1 shape: version 1, single
	// Pending point, no ledger.
	v1 := bytes.Replace(cp, []byte(`"version":2`), []byte(`"version":1`), 1)
	v1 = downgradeLedgerToPending(t, v1)
	r, err := ResumeSession(p, nil, NewGPTuner(), opts, v1)
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if r.InFlight() != 1 {
		t.Fatalf("in flight %d after v1 resume, want 1", r.InFlight())
	}
	want, err := s.Propose()
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Propose()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("pending point drifted: %v vs %v", want, got)
		}
	}
}

// downgradeLedgerToPending rewrites a v2 checkpoint's one-entry ledger
// into the v1 single-pending-point field, emulating a checkpoint taken
// by the pre-batch code.
func downgradeLedgerToPending(t *testing.T, cp []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(cp, &m); err != nil {
		t.Fatal(err)
	}
	var ledger []struct {
		U []float64 `json:"u"`
	}
	if err := json.Unmarshal(m["ledger"], &ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger) != 1 {
		t.Fatalf("expected a one-entry ledger, got %d", len(ledger))
	}
	pending, err := json.Marshal(ledger[0].U)
	if err != nil {
		t.Fatal(err)
	}
	m["pending"] = pending
	delete(m, "ledger")
	delete(m, "next_proposal_id")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestProposeBatchBudget pins budget accounting: k clamps to the
// remaining room, and a full ledger surfaces ErrBudgetExhausted.
func TestProposeBatchBudget(t *testing.T) {
	s := newBatchSession(t, 5, BatchConfig{})
	props, err := s.ProposeBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 5 {
		t.Fatalf("clamp: got %d proposals, want 5", len(props))
	}
	if _, err := s.ProposeBatch(1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("full ledger: got %v, want ErrBudgetExhausted", err)
	}
	if _, err := s.ProposeBatch(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// Single-proposal Propose stays idempotent: with the ledger full it
	// re-issues the oldest unobserved point instead of erroring.
	params, err := s.Propose()
	if err != nil {
		t.Fatalf("idempotent propose with full ledger: %v", err)
	}
	for k, v := range props[0].Params {
		if params[k] != v {
			t.Fatalf("idempotent propose returned %v, want oldest pending %v", params, props[0].Params)
		}
	}
}

// TestProposeBatchCancellation: a cancel between points keeps the short
// batch in the ledger and surfaces the context error.
func TestProposeBatchCancellation(t *testing.T) {
	s := newBatchSession(t, 10, BatchConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	props, err := s.ProposeBatchContext(ctx, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(props) != 0 || s.InFlight() != 0 {
		t.Fatalf("cancelled before the first point: %d returned, %d in flight", len(props), s.InFlight())
	}
	// A live context proposes normally afterwards.
	props, err = s.ProposeBatch(2)
	if err != nil || len(props) != 2 {
		t.Fatalf("after cancel: %d proposals, err %v", len(props), err)
	}
}

// TestBatchConfigValidation rejects unknown strategies and bad radii.
func TestBatchConfigValidation(t *testing.T) {
	p := quadProblem(t)
	if _, err := NewSession(p, nil, NewGPTuner(), SessionOptions{
		Budget: 4, Batch: BatchConfig{Strategy: "kriging-believer"},
	}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := NewSession(p, nil, NewGPTuner(), SessionOptions{
		Budget: 4, Batch: BatchConfig{LPRadius: -1},
	}); err == nil {
		t.Fatal("negative radius accepted")
	}
}

// TestSingleProposeInteropWithBatch: Propose/Observe and the batch API
// share one ledger — mixed use keeps ids and ordering coherent.
func TestSingleProposeInteropWithBatch(t *testing.T) {
	s := newBatchSession(t, 6, BatchConfig{})
	if _, err := s.Propose(); err != nil {
		t.Fatal(err)
	}
	// Propose is idempotent while its point is outstanding.
	if _, err := s.Propose(); err != nil {
		t.Fatal(err)
	}
	if s.InFlight() != 1 {
		t.Fatalf("in flight %d after idempotent Propose, want 1", s.InFlight())
	}
	props, err := s.ProposeBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveProposal(props[1].ID, 1.25, nil); err != nil {
		t.Fatal(err)
	}
	// Observe resolves the oldest unobserved entry: the Propose point.
	if err := s.Observe(3.5, nil); err != nil {
		t.Fatal(err)
	}
	if s.Iter() != 1 {
		t.Fatalf("iter %d, want 1 (batch head still pending)", s.Iter())
	}
	if err := s.ObserveProposal(props[0].ID, 2.5, nil); err != nil {
		t.Fatal(err)
	}
	if s.Iter() != 3 || s.InFlight() != 0 {
		t.Fatalf("iter %d in-flight %d, want 3 and 0", s.Iter(), s.InFlight())
	}
	ys := []float64{3.5, 2.5, 1.25}
	for i, want := range ys {
		if got := s.History().Samples[i].Y; got != want {
			t.Fatalf("sample %d: Y=%v, want %v (id-order commit)", i, got, want)
		}
	}
}
