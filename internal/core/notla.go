package core

import (
	"time"

	"gptunecrowd/internal/gp"
	"gptunecrowd/internal/kernel"
)

// GPTuner is the non-transfer-learning Bayesian-optimization proposer
// ("NoTLA" in the paper): after every function evaluation it refits a GP
// surrogate on the target task's history and maximizes the acquisition.
// Until MinSamples successful evaluations exist it falls back to random
// (Latin-hypercube-style) points.
type GPTuner struct {
	Kernel      kernel.Type
	Acquisition Acquisition
	MinSamples  int // successful samples required before modeling (default 2)
	Restarts    int // GP fit restarts (default 2)
	// Robust tunes the outlier filter / failure imputation applied to
	// the history before each fit (zero value = defaults).
	Robust RobustOptions
	label  string

	// fitFn substitutes the GP fit in tests (nil = gp.Fit).
	fitFn func(X [][]float64, Y []float64, opts gp.Options) (*gp.GP, error)
}

// NewGPTuner returns the default NoTLA proposer.
func NewGPTuner() *GPTuner {
	return &GPTuner{Acquisition: EI{}, MinSamples: 2}
}

// Name implements Proposer.
func (t *GPTuner) Name() string {
	if t.label != "" {
		return t.label
	}
	return "NoTLA"
}

// Propose implements Proposer.
func (t *GPTuner) Propose(ctx *ProposeContext) ([]float64, error) {
	if err := ctx.Cancelled(); err != nil {
		return nil, err
	}
	minSamples := t.MinSamples
	if minSamples < 2 {
		minSamples = 2
	}
	// Robust ingestion: MAD-filter outliers, impute failures at a
	// penalty, and keep anything non-finite away from the fit.
	X, Y, info := ctx.History.RobustXY(t.Robust)
	ctx.NoteRobustIngestion(info)
	if info.OK < minSamples {
		return ctx.RandomFeasible(), nil
	}
	fit := t.fitFn
	if fit == nil {
		fit = gp.Fit
	}
	fitStart := time.Now()
	model, err := fit(X, Y, gp.Options{
		Kernel:      t.Kernel,
		Categorical: ctx.Problem.CategoricalMask(),
		Restarts:    t.Restarts,
		Seed:        ctx.Rng.Int63(),
		Ctx:         ctx.Ctx,
	})
	ctx.Timers.ObserveFit(time.Since(fitStart))
	if cerr := ctx.Cancelled(); cerr != nil {
		// A cancelled fit must not be mistaken for surrogate trouble:
		// surface the cancellation instead of degrading.
		return nil, cerr
	}
	if err != nil {
		// Surrogate trouble should not kill the run; degrade to
		// space-filling sampling for this iteration (logged + counted).
		return ctx.DegradeToSpaceFill(t.Name(), err), nil
	}
	acq := t.Acquisition
	if acq == nil {
		acq = EI{}
	}
	searchStart := time.Now()
	u := SearchNext(model, ctx.Problem.ParamSpace, acq, ctx.History, ctx.Rng, ctx.Search)
	ctx.Timers.ObserveSearch(time.Since(searchStart))
	return u, nil
}
