package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"gptunecrowd/internal/gp"
)

// robustHistory builds a history from (y, failed) pairs with trivial
// one-dimensional inputs; robust ingestion only looks at the targets.
func robustHistory(points ...struct {
	y      float64
	failed bool
}) *History {
	h := &History{}
	for i, p := range points {
		s := Sample{ParamU: []float64{float64(i) / float64(len(points))}}
		if p.failed {
			s.Failed = true
			s.Err = "boom"
		} else {
			s.Y = p.y
		}
		h.Append(s)
	}
	return h
}

func pt(y float64) struct {
	y      float64
	failed bool
} {
	return struct {
		y      float64
		failed bool
	}{y: y}
}

func failedPt() struct {
	y      float64
	failed bool
} {
	return struct {
		y      float64
		failed bool
	}{failed: true}
}

func TestRobustXYExcludesMADOutliers(t *testing.T) {
	// Nine well-behaved values around 1.0 plus one adversarial 1e6. The
	// MAD of the cluster is small, so the fabricated value is excluded.
	pts := []struct {
		y      float64
		failed bool
	}{pt(0.9), pt(1.0), pt(1.1), pt(0.95), pt(1.05), pt(1.2), pt(0.8), pt(1.0), pt(1.02), pt(1e6)}
	h := robustHistory(pts...)
	X, Y, info := h.RobustXY(RobustOptions{})
	if info.OK != 9 || info.Outliers != 1 || info.Imputed != 0 || info.NonFinite != 0 {
		t.Fatalf("info %+v, want 9 kept / 1 outlier", info)
	}
	if len(X) != 9 || len(Y) != 9 {
		t.Fatalf("got %d/%d rows, want 9", len(X), len(Y))
	}
	for _, y := range Y {
		if y > 100 {
			t.Fatalf("adversarial value %v survived the MAD filter", y)
		}
	}
}

func TestRobustXYKeepsBadButRealValues(t *testing.T) {
	// A genuinely bad configuration a few sigma out must survive: the
	// default threshold (6 robust sigma) is for orders of magnitude, not
	// for ordinary spread.
	pts := []struct {
		y      float64
		failed bool
	}{pt(1.0), pt(1.2), pt(0.8), pt(1.1), pt(0.9), pt(2.0)}
	h := robustHistory(pts...)
	_, Y, info := h.RobustXY(RobustOptions{})
	if info.Outliers != 0 {
		t.Fatalf("excluded %d samples from an ordinary spread", info.Outliers)
	}
	found := false
	for _, y := range Y {
		if y == 2.0 {
			found = true
		}
	}
	if !found {
		t.Fatal("bad-but-real value 2.0 was dropped")
	}
}

func TestRobustXYImputesFailuresAtPenalty(t *testing.T) {
	pts := []struct {
		y      float64
		failed bool
	}{pt(1.0), pt(3.0), pt(2.0), failedPt(), failedPt()}
	h := robustHistory(pts...)
	X, Y, info := h.RobustXY(RobustOptions{})
	if info.OK != 3 || info.Imputed != 2 {
		t.Fatalf("info %+v, want 3 kept / 2 imputed", info)
	}
	if len(X) != 5 || len(Y) != 5 {
		t.Fatalf("got %d rows, want 5 (failures must stay in the fit)", len(Y))
	}
	// Default penalty: worst kept (3.0) + 1.5 · spread (2.0) = 6.0.
	for i := 3; i < 5; i++ {
		if Y[i] != 6.0 {
			t.Fatalf("imputed value %v, want 6.0", Y[i])
		}
	}
}

func TestRobustXYPenaltyFactorOption(t *testing.T) {
	pts := []struct {
		y      float64
		failed bool
	}{pt(0.0), pt(2.0), failedPt()}
	h := robustHistory(pts...)
	_, Y, _ := h.RobustXY(RobustOptions{PenaltyFactor: 3})
	if got := Y[len(Y)-1]; got != 2.0+3*2.0 {
		t.Fatalf("penalty %v, want 8.0 with factor 3", got)
	}
}

func TestRobustXYDropsNonFinite(t *testing.T) {
	// Non-finite "successes" are defense in depth: Observe converts them
	// to failures, but histories can be assembled programmatically.
	pts := []struct {
		y      float64
		failed bool
	}{pt(1.0), pt(math.NaN()), pt(math.Inf(1)), pt(2.0)}
	h := robustHistory(pts...)
	_, Y, info := h.RobustXY(RobustOptions{})
	if info.OK != 2 || info.NonFinite != 2 {
		t.Fatalf("info %+v, want 2 kept / 2 non-finite", info)
	}
	for _, y := range Y {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("non-finite %v reached the fit view", y)
		}
	}
}

func TestRobustXYNoSuccessfulSamples(t *testing.T) {
	h := robustHistory(failedPt(), failedPt())
	X, Y, info := h.RobustXY(RobustOptions{})
	if X != nil || Y != nil {
		t.Fatalf("expected empty view with no baseline, got %d rows", len(Y))
	}
	if info.OK != 0 || info.Imputed != 0 {
		t.Fatalf("info %+v, want all-zero besides nothing kept", info)
	}
}

func TestRobustXYConstantObjective(t *testing.T) {
	// Zero MAD must not divide by zero or exclude everything; the
	// penalty falls back to a spread floor.
	pts := []struct {
		y      float64
		failed bool
	}{pt(5.0), pt(5.0), pt(5.0), failedPt()}
	h := robustHistory(pts...)
	_, Y, info := h.RobustXY(RobustOptions{})
	if info.OK != 3 || info.Outliers != 0 || info.Imputed != 1 {
		t.Fatalf("info %+v, want 3 kept / 1 imputed", info)
	}
	pen := Y[len(Y)-1]
	if !(pen > 5.0) || math.IsInf(pen, 0) {
		t.Fatalf("penalty %v must sit above the constant objective", pen)
	}
}

func TestGPTunerDegradesOnFitFailure(t *testing.T) {
	// A proposer whose surrogate fit always fails must not kill the
	// session: every modeling iteration degrades to space-filling
	// sampling, counted and logged.
	const budget = 8
	p := quadProblem(t)
	tuner := NewGPTuner()
	tuner.fitFn = func(X [][]float64, Y []float64, opts gp.Options) (*gp.GP, error) {
		return nil, errors.New("injected fit failure")
	}
	var logs []string
	sess, err := NewSession(p, nil, tuner, SessionOptions{
		Budget: budget,
		Seed:   7,
		Logf: func(format string, args ...interface{}) {
			logs = append(logs, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Run()
	if err != nil {
		t.Fatalf("session died on fit failure: %v", err)
	}
	if h.Len() != budget {
		t.Fatalf("consumed %d of %d budget", h.Len(), budget)
	}
	st := sess.Stats()
	// The first MinSamples iterations are warm-up randoms (no fit); the
	// rest all fail and degrade.
	want := int64(budget - tuner.MinSamples)
	if st.FitFailures != want || st.SpaceFill != want {
		t.Fatalf("stats %+v, want %d fit failures / space fills", st, want)
	}
	matched := 0
	for _, l := range logs {
		if strings.Contains(l, "degrading to space-filling sampling") && strings.Contains(l, "injected fit failure") {
			matched++
		}
	}
	if int64(matched) != want {
		t.Fatalf("logged %d degradation lines, want %d: %q", matched, want, logs)
	}
	if _, ok := h.Best(); !ok {
		t.Fatal("degraded run found no best at all")
	}
}

func TestGPTunerRecoversAfterTransientFitFailure(t *testing.T) {
	// The fit fails only once mid-run; the session must go back to the
	// real surrogate afterwards.
	const budget = 8
	p := quadProblem(t)
	tuner := NewGPTuner()
	calls := 0
	tuner.fitFn = func(X [][]float64, Y []float64, opts gp.Options) (*gp.GP, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient failure")
		}
		return gp.Fit(X, Y, opts)
	}
	sess, err := NewSession(p, nil, tuner, SessionOptions{Budget: budget, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.FitFailures != 1 || st.SpaceFill != 1 {
		t.Fatalf("stats %+v, want exactly one degradation", st)
	}
	if calls < 2 {
		t.Fatalf("fit called %d times; the session never recovered to modeling", calls)
	}
}

func TestSessionStatsTrackRobustIngestion(t *testing.T) {
	// An evaluator that fails on demand: the session's stats must report
	// the imputations of the latest fit.
	p := quadProblem(t)
	fail := false
	inner := p.Evaluator
	p.Evaluator = EvaluatorFunc(func(task, params map[string]interface{}) (float64, error) {
		if fail {
			return 0, errors.New("injected eval failure")
		}
		return inner.Evaluate(task, params)
	})
	sess, err := NewSession(p, nil, NewGPTuner(), SessionOptions{Budget: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		fail = i == 2 // one failure after warm-up
		if err := sess.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.LastImputed != 1 {
		t.Fatalf("stats %+v, want the failed evaluation imputed into the last fit", st)
	}
	if st.FitFailures != 0 {
		t.Fatalf("stats %+v: imputation must not require degradation", st)
	}
}
