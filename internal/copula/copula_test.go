package copula

import (
	"math"
	"math/rand"
	"testing"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/stat"
)

var _ core.Surrogate = (*Model)(nil)

// TestNormalRoundTrip pins the CDF→quantile→CDF identity the score
// transform rests on to 1e-9 across the practically reachable range.
func TestNormalRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-6, 1e-4, 0.01, 0.02425, 0.1, 0.25, 0.5, 0.75, 0.9, 0.97575, 0.99, 0.9999, 1 - 1e-6} {
		got := stat.NormCDF(stat.NormQuantile(p))
		if math.Abs(got-p) > 1e-9 {
			t.Fatalf("NormCDF(NormQuantile(%v)) = %v, off by %v", p, got, math.Abs(got-p))
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := rng.Float64()*0.9998 + 1e-4
		if got := stat.NormCDF(stat.NormQuantile(p)); math.Abs(got-p) > 1e-9 {
			t.Fatalf("round-trip at p=%v off by %v", p, math.Abs(got-p))
		}
	}
}

// TestTransformKnotRoundTrip checks Value(Score(y)) == y to 1e-9 for
// every training value, including duplicates.
func TestTransformKnotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ys := make([]float64, 500)
	for i := range ys {
		ys[i] = math.Floor(rng.NormFloat64()*1e4) / 1e3 // induces ties
	}
	tr := newTransform(ys)
	for _, y := range ys {
		if got := tr.Value(tr.Score(y)); math.Abs(got-y) > 1e-9 {
			t.Fatalf("round-trip of %v gave %v", y, got)
		}
	}
}

func TestTransformMonotoneAndClamped(t *testing.T) {
	tr := newTransform([]float64{3, 1, 2, 2, 5})
	prev := math.Inf(-1)
	for y := 0.0; y <= 6; y += 0.05 {
		z := tr.Score(y)
		if z < prev {
			t.Fatalf("Score not monotone at y=%v", y)
		}
		prev = z
	}
	if tr.Value(-100) != 1 || tr.Value(100) != 5 {
		t.Fatalf("Value should clamp to the knot range, got %v / %v", tr.Value(-100), tr.Value(100))
	}
	if tr.Score(-100) != tr.zk[0] || tr.Score(100) != tr.zk[len(tr.zk)-1] {
		t.Fatal("Score should clamp to the knot range")
	}
	prev = math.Inf(-1)
	for z := -3.0; z <= 3; z += 0.05 {
		v := tr.Value(z)
		if v < prev {
			t.Fatalf("Value not monotone at z=%v", z)
		}
		prev = v
	}
}

// testFunc is monotone in x but strongly nonlinear — the structure
// the copula can recover exactly (its conditional is linear in score
// space, so only the monotone trend transfers, not absolute shape).
func testFunc(x float64) float64 { return math.Exp(2*x) + 0.3*math.Sin(5*x) }

func sampleTask(n int, rng *rand.Rand) ([][]float64, []float64) {
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		Y[i] = testFunc(x)
	}
	return X, Y
}

// TestTransferPrediction fits on a correlated source plus a handful of
// target points and checks the predictions rank-correlate strongly
// with the truth — the property the copula actually guarantees (it
// models monotone-transformed structure, not absolute values).
func TestTransferPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sx, sy := sampleTask(200, rng)
	m := New(1, []Source{{Name: "src", X: sx, Y: sy}}, Options{})
	tx, ty := sampleTask(5, rng)
	if err := m.Fit(tx, ty); err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	for i := 0; i <= 50; i++ {
		x := float64(i) / 50
		mean, std := m.Predict([]float64{x})
		if math.IsNaN(mean) || std <= 0 {
			t.Fatalf("bad posterior at x=%v: mean=%v std=%v", x, mean, std)
		}
		pred = append(pred, mean)
		truth = append(truth, testFunc(x))
	}
	if rho := stat.Spearman(pred, truth); rho < 0.9 {
		t.Fatalf("transfer prediction rank correlation %v, want >= 0.9", rho)
	}
}

// TestFewShotNoTargetSamples exercises the pure-transfer path: no
// target data at all, prior comes entirely from the source.
func TestFewShotNoTargetSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sx, sy := sampleTask(100, rng)
	m := New(1, []Source{{Name: "src", X: sx, Y: sy}}, Options{})
	if err := m.Fit(nil, nil); err != nil {
		t.Fatal(err)
	}
	mean, std := m.Predict([]float64{0.5})
	if math.IsNaN(mean) || std <= 0 {
		t.Fatalf("few-shot posterior mean=%v std=%v", mean, std)
	}
}

func TestObserveRefits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sx, sy := sampleTask(80, rng)
	m := New(1, []Source{{X: sx, Y: sy}}, Options{})
	if err := m.Fit(nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := rng.Float64()
		if err := m.Observe([]float64{x}, testFunc(x)); err != nil {
			t.Fatal(err)
		}
	}
	if m.TargetLen() != 10 {
		t.Fatalf("TargetLen = %d, want 10", m.TargetLen())
	}
	// With >= 2 distinct target values the inverse map must come from
	// the target history: predictions stay inside its value range.
	lo, hi := stat.Min(m.ty), stat.Max(m.ty)
	for i := 0; i <= 20; i++ {
		mean, _ := m.Predict([]float64{float64(i) / 20})
		if mean < lo-1e-12 || mean > hi+1e-12 {
			t.Fatalf("prediction %v escapes target range [%v, %v]", mean, lo, hi)
		}
	}
}

// TestBatchMatchesPointwiseAllWorkerCounts pins the determinism
// contract: PredictBatchInto is bit-identical to Predict for every
// worker count.
func TestBatchMatchesPointwiseAllWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sx, sy := sampleTask(150, rng)
	m := New(1, []Source{{X: sx, Y: sy}}, Options{})
	tx, ty := sampleTask(8, rng)
	if err := m.Fit(tx, ty); err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, 64)
	for i := range X {
		X[i] = []float64{rng.Float64()}
	}
	wantM := make([]float64, len(X))
	wantS := make([]float64, len(X))
	for i, x := range X {
		wantM[i], wantS[i] = m.Predict(x)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		gotM := make([]float64, len(X))
		gotS := make([]float64, len(X))
		m.PredictBatchInto(X, gotM, gotS, workers)
		for i := range X {
			if gotM[i] != wantM[i] || gotS[i] != wantS[i] {
				t.Fatalf("workers=%d: batch (%v,%v) != pointwise (%v,%v) at %d",
					workers, gotM[i], gotS[i], wantM[i], wantS[i], i)
			}
		}
	}
}

func TestErrorsAndPrior(t *testing.T) {
	m := New(2, nil, Options{})
	if mean, std := m.Predict([]float64{0, 0}); mean != 0 || std != 1 {
		t.Fatalf("unfitted prior = (%v, %v), want (0, 1)", mean, std)
	}
	if err := m.Fit([][]float64{{0, 0}}, []float64{1}); err == nil {
		t.Fatal("Fit with one pooled sample should fail")
	}
	if err := m.Fit([][]float64{{0}}, []float64{1}); err == nil {
		t.Fatal("Fit with wrong-dim point should fail")
	}
	if err := m.Fit([][]float64{{0, 0}}, nil); err == nil {
		t.Fatal("Fit with mismatched lengths should fail")
	}
	if err := m.Observe([]float64{0}, 1); err == nil {
		t.Fatal("Observe with wrong-dim point should fail")
	}
	if m.Name() != "copula" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestCostMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sx, sy := sampleTask(50, rng)
	m := New(3, []Source{{X: sx, Y: sy}}, Options{})
	prev := 0.0
	for _, n := range []int{0, 10, 100, 1000, 10000} {
		c := m.Cost(n)
		if c <= prev {
			t.Fatalf("Cost(%d) = %v not increasing past %v", n, c, prev)
		}
		prev = c
	}
	// Identical inputs must give identical estimates (determinism).
	if m.Cost(500) != m.Cost(500) {
		t.Fatal("Cost is not deterministic")
	}
}
