// Package copula implements a Gaussian-copula few-shot transfer
// surrogate in the style of GC_TLA (Randall et al.): each task's
// objective values are mapped through their empirical CDF to standard
// normal scores, the pooled (x, z) rows from related-task histories and
// the target history are modelled with a single joint Gaussian, and
// predictions condition z on x before mapping back through the target
// task's empirical quantile function.
//
// The model is deliberately cheap: fitting is one pass over the pooled
// rows plus a d×d Cholesky solve — O(n·d² + d³) against the O(n³) of a
// full GP — so it stays fast on crowd histories with tens of thousands
// of samples, at the price of only capturing monotone-transformed
// linear structure.
package copula

import (
	"fmt"
	"math"
	"sort"

	"gptunecrowd/internal/linalg"
	"gptunecrowd/internal/parallel"
	"gptunecrowd/internal/stat"
)

// Source is one related task's evaluation history used as a transfer
// prior. X rows are canonical (normalized) parameter points; Y holds
// the matching objective values (failures already filtered out).
type Source struct {
	Name string
	X    [][]float64
	Y    []float64
}

// Options tunes the copula fit.
type Options struct {
	// Shrinkage scales the off-diagonal covariance entries by (1 -
	// Shrinkage), regularizing the joint Gaussian toward independent
	// marginals. 0 means the default 0.05; use a negative value for no
	// shrinkage.
	Shrinkage float64
	// StdFloor is the minimum predictive standard deviation in
	// objective units (default 1e-6), keeping acquisitions well defined
	// when the conditional collapses.
	StdFloor float64
}

func (o *Options) defaults() {
	if o.Shrinkage == 0 {
		o.Shrinkage = 0.05
	} else if o.Shrinkage < 0 {
		o.Shrinkage = 0
	}
	if o.StdFloor <= 0 {
		o.StdFloor = 1e-6
	}
}

// Model is the Gaussian-copula transfer surrogate. It satisfies
// core.Surrogate. After Fit returns, Predict and PredictBatchInto are
// safe for concurrent use; Fit and Observe are not.
type Model struct {
	dim     int
	sources []Source
	opts    Options

	srcRows int // pooled source row count, for Cost

	// target history (copies; appended to by Observe)
	tx [][]float64
	ty []float64

	// fitted state
	fitted  bool
	mu      []float64 // mean of (x₁..x_d, z)
	beta    []float64 // Σ_xx⁻¹ Σ_xz
	condStd float64   // √(σ_zz − Σ_zx β), in score space
	inv     *transform
}

// New returns an unfitted model over a dim-dimensional canonical
// parameter space with the given related-task histories (nil for a
// single-task fit).
func New(dim int, sources []Source, opts Options) *Model {
	opts.defaults()
	rows := 0
	for _, s := range sources {
		if len(s.Y) >= 2 {
			rows += len(s.Y)
		}
	}
	return &Model{dim: dim, sources: sources, opts: opts, srcRows: rows}
}

// Name identifies the surrogate kind.
func (m *Model) Name() string { return "copula" }

// Cost returns a deterministic estimate of the work to fit and query
// the model with n target samples, in arbitrary but cross-surrogate
// consistent units (≈seconds). It deliberately ignores wall-clock
// measurements so that bandit arm selection stays a pure function of
// the history.
func (m *Model) Cost(n int) float64 {
	d := float64(m.dim + 1)
	rows := float64(n + m.srcRows)
	return 1e-8 * (rows*d*d + d*d*d)
}

// Fit replaces the target history with (X, Y) and refits the joint
// Gaussian over the pooled source and target score rows. X may be
// empty for a pure few-shot fit from the sources alone.
func (m *Model) Fit(X [][]float64, Y []float64) error {
	if len(X) != len(Y) {
		return fmt.Errorf("copula: len(X)=%d, len(Y)=%d", len(X), len(Y))
	}
	m.tx = m.tx[:0]
	m.ty = m.ty[:0]
	for i, x := range X {
		if len(x) != m.dim {
			return fmt.Errorf("copula: point %d has dim %d, want %d", i, len(x), m.dim)
		}
		m.tx = append(m.tx, append([]float64(nil), x...))
		m.ty = append(m.ty, Y[i])
	}
	return m.refit()
}

// Observe appends one target evaluation and refits. The refit is a
// single covariance pass, so incremental use stays cheap.
func (m *Model) Observe(x []float64, y float64) error {
	if len(x) != m.dim {
		return fmt.Errorf("copula: observed point has dim %d, want %d", len(x), m.dim)
	}
	m.tx = append(m.tx, append([]float64(nil), x...))
	m.ty = append(m.ty, y)
	return m.refit()
}

func (m *Model) refit() error {
	d := m.dim
	var rows [][]float64
	addTask := func(X [][]float64, Y []float64) {
		if len(Y) < 2 {
			return // a single point has no empirical CDF
		}
		tr := newTransform(Y)
		for i, x := range X {
			r := make([]float64, d+1)
			copy(r, x)
			r[d] = tr.Score(Y[i])
			rows = append(rows, r)
		}
	}
	for _, s := range m.sources {
		addTask(s.X, s.Y)
	}
	addTask(m.tx, m.ty)
	if len(rows) < 3 {
		return fmt.Errorf("copula: %d pooled samples, need at least 3 (sources plus target)", len(rows))
	}

	mu := make([]float64, d+1)
	for _, r := range rows {
		for j, v := range r {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(len(rows))
	}
	cov := linalg.NewMatrix(d+1, d+1)
	for _, r := range rows {
		for i := 0; i <= d; i++ {
			di := r[i] - mu[i]
			for j := i; j <= d; j++ {
				cov.Add(i, j, di*(r[j]-mu[j]))
			}
		}
	}
	norm := 1.0 / float64(len(rows)-1)
	keep := 1 - m.opts.Shrinkage
	for i := 0; i <= d; i++ {
		for j := i; j <= d; j++ {
			v := cov.At(i, j) * norm
			if i != j {
				v *= keep
				cov.Set(j, i, v)
			}
			cov.Set(i, j, v)
		}
	}

	sxx := linalg.NewMatrix(d, d)
	sxz := make([]float64, d)
	for i := 0; i < d; i++ {
		sxz[i] = cov.At(i, d)
		for j := 0; j < d; j++ {
			sxx.Set(i, j, cov.At(i, j))
		}
	}
	ch, err := linalg.NewCholeskyJitter(sxx, 1e-10)
	if err != nil {
		return fmt.Errorf("copula: covariance factorization: %w", err)
	}
	beta := ch.SolveVec(sxz)
	condVar := cov.At(d, d)
	for i, b := range beta {
		condVar -= sxz[i] * b
	}
	if condVar < 1e-12 {
		condVar = 1e-12
	}

	// The inverse map uses the target's own quantile function as soon
	// as it has two distinct objective values; before that, the pooled
	// source objectives act as the few-shot prior for the output scale.
	inv := m.ty
	if countDistinct(m.ty) < 2 {
		var pooled []float64
		for _, s := range m.sources {
			pooled = append(pooled, s.Y...)
		}
		pooled = append(pooled, m.ty...)
		if len(pooled) == 0 {
			return fmt.Errorf("copula: no objective values to build a quantile map")
		}
		inv = pooled
	}

	m.mu = mu
	m.beta = beta
	m.condStd = math.Sqrt(condVar)
	m.inv = newTransform(inv)
	m.fitted = true
	return nil
}

// Predict returns the conditional mean and an uncertainty half-width
// at canonical point x, both in objective units. Before the first
// successful Fit it returns the standard-normal prior (0, 1).
func (m *Model) Predict(x []float64) (mean, std float64) {
	if !m.fitted {
		return 0, 1
	}
	d := m.dim
	z := m.mu[d]
	for j, b := range m.beta {
		z += b * (x[j] - m.mu[j])
	}
	if z < -8 {
		z = -8
	} else if z > 8 {
		z = 8
	}
	mean = m.inv.Value(z)
	lo := m.inv.Value(z - m.condStd)
	hi := m.inv.Value(z + m.condStd)
	std = (hi - lo) / 2
	if std < m.opts.StdFloor {
		std = m.opts.StdFloor
	}
	return mean, std
}

// PredictBatchInto fills means and stds for every row of X, fanning
// the (independent, deterministic) per-point predictions out over
// workers. Results are bit-identical for every worker count.
func (m *Model) PredictBatchInto(X [][]float64, means, stds []float64, workers int) {
	parallel.For(len(X), workers, func(i int) {
		means[i], stds[i] = m.Predict(X[i])
	})
}

// TargetLen reports the number of target samples currently held.
func (m *Model) TargetLen() int { return len(m.ty) }

func countDistinct(ys []float64) int {
	seen := make(map[float64]struct{}, len(ys))
	for _, y := range ys {
		seen[y] = struct{}{}
		if len(seen) >= 2 {
			return 2
		}
	}
	return len(seen)
}

// transform is one task's monotone empirical map between objective
// values and standard normal scores. Knots pair each distinct sorted
// objective value with the normal quantile of its Hazen plotting
// position p = (rank − ½)/n (average rank under ties); both Score and
// Value interpolate linearly between knots and are exact at them, so
// Value(Score(y)) == y bit-for-bit for every training value.
type transform struct {
	yk []float64 // distinct objective values, ascending
	zk []float64 // matching normal scores, strictly increasing
}

func newTransform(ys []float64) *transform {
	n := len(ys)
	s := append([]float64(nil), ys...)
	sort.Float64s(s)
	t := &transform{}
	for i := 0; i < n; {
		j := i
		for j+1 < n && s[j+1] == s[i] {
			j++
		}
		rank := float64(i+j)/2 + 1
		p := (rank - 0.5) / float64(n)
		t.yk = append(t.yk, s[i])
		t.zk = append(t.zk, stat.NormQuantile(p))
		i = j + 1
	}
	return t
}

// Score maps an objective value to its normal score, clamping outside
// the observed range.
func (t *transform) Score(y float64) float64 {
	return interp(t.yk, t.zk, y)
}

// Value maps a normal score back to an objective value, clamping
// outside the knot range.
func (t *transform) Value(z float64) float64 {
	return interp(t.zk, t.yk, z)
}

// interp evaluates the piecewise-linear map through (xs[i], vs[i]) at
// x, exact at knots and clamped beyond the ends.
func interp(xs, vs []float64, x float64) float64 {
	n := len(xs)
	i := sort.SearchFloat64s(xs, x)
	switch {
	case i < n && xs[i] == x:
		return vs[i]
	case i == 0:
		return vs[0]
	case i == n:
		return vs[n-1]
	}
	frac := (x - xs[i-1]) / (xs[i] - xs[i-1])
	return vs[i-1] + frac*(vs[i]-vs[i-1])
}
