package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned by least-squares solvers when the system is
// numerically rank deficient beyond the requested regularization.
var ErrSingular = errors.New("linalg: singular system")

// QR holds a Householder QR factorization of an m×n matrix (m >= n).
// The Householder vectors are stored in the (sub)diagonal part of qr
// (including the diagonal slot), and the diagonal of R is kept
// separately in rdiag, following the classic JAMA layout.
type QR struct {
	qr    *Matrix
	rdiag []float64
}

// NewQR factorizes a (m >= n required). a is not modified.
func NewQR(a *Matrix) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic("linalg: QR requires rows >= cols")
	}
	w := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, w.At(i, k))
		}
		if nrm != 0 {
			if w.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				w.Set(i, k, w.At(i, k)/nrm)
			}
			w.Set(k, k, w.At(k, k)+1)
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += w.At(i, k) * w.At(i, j)
				}
				s = -s / w.At(k, k)
				for i := k; i < m; i++ {
					w.Set(i, j, w.At(i, j)+s*w.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: w, rdiag: rdiag}
}

// Solve returns the least-squares solution of a·x = b for the factorized
// matrix. Returns ErrSingular when R has a (near-)zero diagonal.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.rows, f.qr.cols
	if len(b) != m {
		panic("linalg: QR.Solve dimension mismatch")
	}
	for _, d := range f.rdiag {
		if math.Abs(d) < 1e-14 {
			return nil, ErrSingular
		}
	}
	y := CopyVec(b)
	// y = Qᵀ·b via the stored Householder reflectors.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R (strict upper triangle of qr + rdiag).
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min‖a·x − b‖₂ via QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return NewQR(a).Solve(b)
}

// RidgeLeastSquares solves min‖a·x − b‖² + λ‖x‖² by augmenting the
// system with √λ·I rows, which keeps the QR path well conditioned even
// for collinear designs (the WeightedSum(dynamic) weight solve).
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		panic("linalg: negative ridge parameter")
	}
	m, n := a.rows, a.cols
	aug := NewMatrix(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.Row(i), a.Row(i))
	}
	s := math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		aug.Set(m+i, i, s)
	}
	bb := make([]float64, m+n)
	copy(bb, b)
	return LeastSquares(aug, bb)
}
