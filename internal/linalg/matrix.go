// Package linalg provides the dense linear algebra kernels that underpin
// the Gaussian-process surrogate models: matrices, Cholesky and QR
// factorizations, triangular solves and a handful of vector helpers.
//
// The package is deliberately self-contained (stdlib only) and tuned for
// the moderate problem sizes that appear in autotuning surrogates
// (covariance matrices of a few hundred to a few thousand rows).
package linalg

import (
	"fmt"
	"math"
	"strings"

	"gptunecrowd/internal/parallel"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-initialized r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data. The slice is
// used directly (not copied); callers that need isolation should copy
// first.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Matrix{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the underlying row-major storage (shared).
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Matrix{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddDiag adds v to every diagonal element, in place, and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] += v
	}
	return m
}

// AddM accumulates a into m elementwise, in place, and returns m.
func (m *Matrix) AddM(a *Matrix) *Matrix {
	if a.rows != m.rows || a.cols != m.cols {
		panic("linalg: AddM dimension mismatch")
	}
	for i, v := range a.data {
		m.data[i] += v
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .6g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// matMulParallelFlops is the flop count above which MatMul goes
// multicore: below it the goroutine fan-out costs more than it saves on
// the small covariance blocks that dominate this codebase.
const matMulParallelFlops = 1 << 21

// MatMul returns a*b, switching to row-parallel execution for large
// products (see MatMulWorkers for the determinism argument).
func MatMul(a, b *Matrix) *Matrix {
	if a.rows*a.cols*b.cols >= matMulParallelFlops {
		return MatMulWorkers(a, b, 0)
	}
	return MatMulWorkers(a, b, 1)
}

// MatMulWorkers returns a*b computed with the given worker count (<= 0
// means the package default). Each output row is produced by exactly
// one worker with an unchanged inner accumulation order, so the result
// is bit-identical for every worker count.
func MatMulWorkers(a, b *Matrix, workers int) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: MatMul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	c := NewMatrix(a.rows, b.cols)
	// ikj loop order: stream through b's rows for cache friendliness.
	parallel.For(a.rows, workers, func(i int) {
		crow := c.Row(i)
		arow := a.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	})
	return c
}

// MatVec returns a*x.
func MatVec(a *Matrix, x []float64) []float64 {
	if a.cols != len(x) {
		panic("linalg: MatVec dimension mismatch")
	}
	y := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MatTVec returns aᵀ*x.
func MatTVec(a *Matrix, x []float64) []float64 {
	if a.rows != len(x) {
		panic("linalg: MatTVec dimension mismatch")
	}
	y := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// MaxAbsDiff returns max_i |a_i - b_i|, a convenience for tests.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
