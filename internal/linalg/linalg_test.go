package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if got := c.Data()[i]; !almostEqual(got, w, 1e-12) {
			t.Fatalf("MatMul[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape = %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatVecAgainstMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 7)
	x := randomVec(rng, 7)
	y := MatVec(a, x)
	xm := NewMatrixFrom(7, 1, CopyVec(x))
	ym := MatMul(a, xm)
	for i := range y {
		if !almostEqual(y[i], ym.At(i, 0), 1e-12) {
			t.Fatalf("MatVec disagrees with MatMul at %d", i)
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := NewMatrixFrom(3, 3, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 0, 6, 1, 0, -8, 5, 3}
	for i, w := range want {
		if !almostEqual(ch.L.Data()[i], w, 1e-10) {
			t.Fatalf("L[%d] = %v, want %v", i, ch.L.Data()[i], w)
		}
	}
	// det(A) = (2·1·3)² = 36
	if !almostEqual(ch.LogDet(), math.Log(36), 1e-9) {
		t.Fatalf("LogDet = %v, want %v", ch.LogDet(), math.Log(36))
	}
}

func TestCholeskySolveAndLogDet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	a := randomSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := randomVec(rng, n)
	b := MatVec(a, x)
	got := ch.SolveVec(b)
	if d := MaxAbsDiff(got, x); d > 1e-8 {
		t.Fatalf("SolveVec residual %v", d)
	}
	// Log-det against the product of squared diagonal entries of L.
	var ld float64
	for i := 0; i < n; i++ {
		ld += 2 * math.Log(ch.L.At(i, i))
	}
	if !almostEqual(ch.LogDet(), ld, 1e-12) {
		t.Fatalf("LogDet mismatch")
	}
}

func TestCholeskyJitterRescuesSingular(t *testing.T) {
	// Rank-1 matrix: jitter must rescue it.
	a := NewMatrixFrom(2, 2, []float64{1, 1, 1, 1})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("jittered Cholesky failed: %v", err)
	}
	if ch.Jitter <= 0 {
		t.Fatalf("expected positive jitter, got %v", ch.Jitter)
	}
}

func TestCholeskyRejectsNegativeDefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{-5, 0, 0, -5})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected failure on negative definite matrix")
	}
}

func TestCholeskyJitterExhaustion(t *testing.T) {
	// Matrices that escalating jitter cannot rescue must surface the
	// sentinel error (the recoverable signal gp.Fit and lcm.Fit degrade
	// on), not a panic or a garbage factorization. NaN entries — the
	// shape crowd-fed data corruption takes — defeat every jitter level
	// because jitter only perturbs the diagonal.
	cases := map[string]*Matrix{
		"nan diagonal":     NewMatrixFrom(2, 2, []float64{math.NaN(), 0, 0, 1}),
		"nan off-diagonal": NewMatrixFrom(2, 2, []float64{1, math.NaN(), math.NaN(), 1}),
		"all nan":          NewMatrixFrom(3, 3, []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}),
	}
	for name, a := range cases {
		t.Run(name, func(t *testing.T) {
			ch, err := NewCholeskyJitter(a, 0)
			if err == nil {
				t.Fatalf("factorized a non-factorizable matrix: %+v", ch)
			}
			if !errors.Is(err, ErrNotPositiveDefinite) {
				t.Fatalf("error %v is not ErrNotPositiveDefinite", err)
			}
		})
	}
	// The plain (no-jitter) path reports the same sentinel.
	if _, err := NewCholesky(NewMatrixFrom(2, 2, []float64{-5, 0, 0, -5})); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("negative definite error %v is not ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		// L·Lᵀ ≈ A + jitter·I
		llt := MatMul(ch.L, ch.L.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := a.At(i, j)
				if i == j {
					want += ch.Jitter
				}
				if math.Abs(llt.At(i, j)-want) > 1e-7*(1+math.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardBackwardSubst(t *testing.T) {
	l := NewMatrixFrom(3, 3, []float64{2, 0, 0, 1, 3, 0, -1, 2, 4})
	x := []float64{1, -2, 0.5}
	b := MatVec(l, x)
	y := ForwardSubst(l, b)
	if d := MaxAbsDiff(y, x); d > 1e-12 {
		t.Fatalf("ForwardSubst residual %v", d)
	}
	bt := MatVec(l.T(), x)
	xt := BackwardSubstT(l, bt)
	if d := MaxAbsDiff(xt, x); d > 1e-12 {
		t.Fatalf("BackwardSubstT residual %v", d)
	}
}

func TestSolveLowerMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 6
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, rng.NormFloat64())
		}
		l.Set(i, i, 2+rng.Float64())
	}
	b := randomMatrix(rng, n, 3)
	y := SolveLowerMatrix(l, b)
	ly := MatMul(l, y)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(ly.At(i, j), b.At(i, j), 1e-9) {
				t.Fatalf("SolveLowerMatrix residual at (%d,%d)", i, j)
			}
		}
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Square, well-conditioned system: exact solve.
	a := NewMatrixFrom(3, 3, []float64{2, 1, 0, 1, 3, 1, 0, 1, 4})
	x := []float64{1, -1, 2}
	b := MatVec(a, x)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, x); d > 1e-9 {
		t.Fatalf("LeastSquares residual %v", d)
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noisy-free samples: exact recovery.
	n := 10
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], 2, 1e-9) || !almostEqual(got[1], 1, 1e-9) {
		t.Fatalf("fit = %v, want [2 1]", got)
	}
}

func TestQRSingularDetection(t *testing.T) {
	a := NewMatrixFrom(3, 2, []float64{1, 2, 2, 4, 3, 6}) // collinear columns
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected ErrSingular for collinear design")
	}
}

func TestRidgeLeastSquaresHandlesCollinear(t *testing.T) {
	a := NewMatrixFrom(3, 2, []float64{1, 2, 2, 4, 3, 6})
	x, err := RidgeLeastSquares(a, []float64{1, 2, 3}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge pulls toward the minimum-norm solution; residual should be tiny.
	r := MatVec(a, x)
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(r[i]-want) > 1e-3 {
			t.Fatalf("ridge residual too large: %v vs %v", r[i], want)
		}
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 20, 4)
	b := randomVec(rng, 20)
	x0, err := RidgeLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := RidgeLeastSquares(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(x1) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink: %v vs %v", Norm2(x1), Norm2(x0))
	}
}

func TestNorm2Overflow(t *testing.T) {
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(x); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 overflow guard failed: %v", got)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	z := CopyVec(y)
	Axpy(2, x, z)
	if d := MaxAbsDiff(z, []float64{6, 9, 12}); d != 0 {
		t.Fatalf("Axpy result %v", z)
	}
	ScaleVec(0.5, z)
	if d := MaxAbsDiff(z, []float64{3, 4.5, 6}); d != 0 {
		t.Fatalf("ScaleVec result %v", z)
	}
}

func TestMatTVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 4, 6)
	x := randomVec(rng, 4)
	got := MatTVec(a, x)
	want := MatVec(a.T(), x)
	if d := MaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("MatTVec mismatch %v", d)
	}
}

func TestIdentityAndAddDiag(t *testing.T) {
	m := Identity(3)
	m.AddDiag(2)
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 3 {
			t.Fatalf("diag = %v", m.At(i, i))
		}
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randomSPD builds B·Bᵀ + I which is symmetric positive definite.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := MatMul(b, b.T())
	a.AddDiag(1)
	return a
}

func TestCholeskySolveMatrixAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 8
	a := randomSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Solve with a multi-column RHS.
	b := randomMatrix(rng, n, 3)
	x := ch.Solve(b)
	ax := MatMul(a, x)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(ax.At(i, j)-b.At(i, j)) > 1e-7 {
				t.Fatalf("Solve residual at (%d,%d)", i, j)
			}
		}
	}
	// Inverse: A·A⁻¹ ≈ I.
	inv := ch.Inverse()
	prod := MatMul(a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-7 {
				t.Fatalf("Inverse residual at (%d,%d): %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	m.Add(0, 1, 5)
	if m.At(0, 1) != 7 {
		t.Fatal("Add wrong")
	}
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatal("Scale wrong")
	}
	m2 := NewMatrixFrom(2, 2, []float64{1, 1, 1, 1})
	m.AddM(m2)
	if m.At(0, 0) != 3 {
		t.Fatal("AddM wrong")
	}
	if s := m.String(); len(s) == 0 {
		t.Fatal("String empty")
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatal("dims wrong")
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	expectPanic("MatMul", func() { MatMul(a, b) })
	expectPanic("MatVec", func() { MatVec(a, []float64{1}) })
	expectPanic("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	expectPanic("NewMatrixFrom", func() { NewMatrixFrom(2, 2, []float64{1}) })
	expectPanic("AddM", func() { a.AddM(NewMatrix(3, 2)) })
	expectPanic("ridge", func() { RidgeLeastSquares(a, []float64{1, 2}, -1) })
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected non-square error")
	}
}
