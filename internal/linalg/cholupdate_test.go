package linalg

import (
	"math/rand"
	"testing"
)

// randSPDDiag returns a well-conditioned random SPD matrix A = BᵀB + d·I.
func randSPDDiag(n int, diag float64, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := MatMul(b.T(), b)
	a.AddDiag(diag)
	return a
}

// reconstruct returns L·Lᵀ for the factor.
func reconstruct(c *Cholesky) *Matrix {
	return MatMul(c.L, c.L.T())
}

// maxAbsDiffM returns max_ij |a_ij − b_ij|.
func maxAbsDiffM(a, b *Matrix) float64 {
	var m float64
	for i := 0; i < a.Rows(); i++ {
		d := MaxAbsDiff(a.Row(i), b.Row(i))
		if d > m {
			m = d
		}
	}
	return m
}

// TestCholeskyUpdateDowndateAppendProperty checks, across 100 randomized
// SPD matrices, that the rank-1 Update/Downdate and the bordered
// AppendRow produce factors matching NewCholesky of the explicitly
// rebuilt matrix to 1e-10.
func TestCholeskyUpdateDowndateAppendProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const tol = 1e-10
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(14)
		a := randSPDDiag(n+1, 1+rng.Float64(), rng)

		// Leading n×n principal submatrix: the starting factor.
		lead := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			copy(lead.Row(i), a.Row(i)[:n])
		}
		ch, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("trial %d: factorize: %v", trial, err)
		}

		// Update: A + v·vᵀ.
		v := make([]float64, n)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		up := lead.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				up.Add(i, j, v[i]*v[j])
			}
		}
		chUp := &Cholesky{L: ch.L.Clone(), Jitter: ch.Jitter}
		chUp.Update(v)
		want, err := NewCholesky(up)
		if err != nil {
			t.Fatalf("trial %d: refactorize updated: %v", trial, err)
		}
		if d := maxAbsDiffM(chUp.L, want.L); d > tol {
			t.Fatalf("trial %d: Update factor drift %g > %g", trial, d, tol)
		}

		// Downdate the update away: must return to the original factor.
		if err := chUp.Downdate(v); err != nil {
			t.Fatalf("trial %d: Downdate: %v", trial, err)
		}
		if d := maxAbsDiffM(chUp.L, ch.L); d > tol {
			t.Fatalf("trial %d: Update∘Downdate drift %g > %g", trial, d, tol)
		}

		// AppendRow: border with the last row/column of the big matrix.
		k := make([]float64, n)
		for i := 0; i < n; i++ {
			k[i] = a.At(i, n)
		}
		chApp := &Cholesky{L: ch.L.Clone(), Jitter: ch.Jitter}
		if err := chApp.AppendRow(k, a.At(n, n)); err != nil {
			t.Fatalf("trial %d: AppendRow: %v", trial, err)
		}
		wantFull, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: refactorize bordered: %v", trial, err)
		}
		if d := maxAbsDiffM(chApp.L, wantFull.L); d > tol {
			t.Fatalf("trial %d: AppendRow factor drift %g > %g", trial, d, tol)
		}
	}
}

// TestCholeskyAppendRowJitterPath exercises AppendRow on factors whose
// base factorization needed adaptive jitter: the bordered factor must
// reconstruct A + Jitter·I to 1e-10, i.e. the jitter invariant extends
// to the appended row.
func TestCholeskyAppendRowJitterPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const tol = 1e-10
	jittered := 0
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(8)
		// Rank-deficient base: duplicate columns force the jitter path.
		b := NewMatrix(n+1, 2)
		for i := 0; i <= n; i++ {
			b.Set(i, 0, rng.NormFloat64())
			b.Set(i, 1, rng.NormFloat64())
		}
		a := MatMul(b, b.T()) // rank ≤ 2, singular for n ≥ 2

		lead := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			copy(lead.Row(i), a.Row(i)[:n])
		}
		ch, err := NewCholesky(lead)
		if err != nil {
			t.Fatalf("trial %d: jittered factorize: %v", trial, err)
		}
		if ch.Jitter > 0 {
			jittered++
		}
		k := make([]float64, n)
		for i := 0; i < n; i++ {
			k[i] = a.At(i, n)
		}
		if err := ch.AppendRow(k, a.At(n, n)); err != nil {
			// The bordered matrix can genuinely need more jitter than
			// the base factor carries; the error contract (factor
			// unchanged, caller refits) is the point of the path.
			if ch.L.Rows() != n {
				t.Fatalf("trial %d: failed AppendRow mutated the factor", trial)
			}
			continue
		}
		// Reconstruct and compare against A + Jitter·I.
		got := reconstruct(ch)
		want := a.Clone().AddDiag(ch.Jitter)
		if d := maxAbsDiffM(got, want); d > tol {
			t.Fatalf("trial %d: jittered AppendRow reconstruction drift %g > %g", trial, d, tol)
		}
	}
	if jittered == 0 {
		t.Fatal("jitter path never exercised; fixture too well-conditioned")
	}
}

// TestCholeskyDowndateRejectsIndefinite checks that a downdate crossing
// positive definiteness fails cleanly and leaves the factor unchanged.
func TestCholeskyDowndateRejectsIndefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPDDiag(6, 0.1, rng)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L.Clone()
	// v larger than anything A can absorb.
	v := make([]float64, 6)
	for i := range v {
		v[i] = 100
	}
	if err := ch.Downdate(v); err == nil {
		t.Fatal("Downdate of an indefinite shift succeeded")
	}
	if d := maxAbsDiffM(ch.L, before); d != 0 {
		t.Fatalf("failed Downdate mutated the factor (drift %g)", d)
	}
}

func BenchmarkCholeskyAppendRow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 256
	a := randSPDDiag(n+1, 1, rng)
	lead := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(lead.Row(i), a.Row(i)[:n])
	}
	base, err := NewCholesky(lead)
	if err != nil {
		b.Fatal(err)
	}
	k := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = a.At(i, n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := &Cholesky{L: base.L, Jitter: base.Jitter}
		if err := ch.AppendRow(k, a.At(n, n)); err != nil {
			b.Fatal(err)
		}
	}
}
