package linalg

import (
	"math/rand"
	"testing"
)

func randMatrix(r, c int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func randSPD(n int, seed int64) *Matrix {
	a := randMatrix(n, n, seed)
	s := MatMul(a, a.T())
	s.AddDiag(float64(n))
	return s
}

func TestMatMulWorkersBitIdentical(t *testing.T) {
	a := randMatrix(33, 21, 1)
	b := randMatrix(21, 17, 2)
	ref := MatMulWorkers(a, b, 1)
	for _, w := range []int{2, 8} {
		got := MatMulWorkers(a, b, w)
		for i := range ref.data {
			if ref.data[i] != got.data[i] {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
	// The auto-switching MatMul must agree with the explicit variants.
	got := MatMul(a, b)
	for i := range ref.data {
		if ref.data[i] != got.data[i] {
			t.Fatalf("MatMul disagrees with MatMulWorkers at %d", i)
		}
	}
}

func TestCholeskySolveAndInverseWorkersBitIdentical(t *testing.T) {
	a := randSPD(24, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randMatrix(24, 9, 4)
	refSolve := ch.SolveWorkers(b, 1)
	refInv := ch.InverseWorkers(1)
	for _, w := range []int{2, 8} {
		s := ch.SolveWorkers(b, w)
		inv := ch.InverseWorkers(w)
		for i := range refSolve.data {
			if refSolve.data[i] != s.data[i] {
				t.Fatalf("Solve workers=%d: element %d differs", w, i)
			}
		}
		for i := range refInv.data {
			if refInv.data[i] != inv.data[i] {
				t.Fatalf("Inverse workers=%d: element %d differs", w, i)
			}
		}
	}
}

func TestSolveVecIntoMatchesSolveVec(t *testing.T) {
	a := randSPD(13, 5)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 13)
	for i := range b {
		b[i] = float64(i) - 6
	}
	want := ch.SolveVec(b)
	dst := make([]float64, 13)
	tmp := make([]float64, 13)
	ch.SolveVecInto(b, dst, tmp)
	for i := range want {
		if want[i] != dst[i] {
			t.Fatalf("element %d: %v vs %v", i, want[i], dst[i])
		}
	}
}
