package linalg

import (
	"errors"
	"fmt"
	"math"

	"gptunecrowd/internal/parallel"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization fails
// even after the maximum jitter has been applied.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ, plus the jitter that was added to the
// diagonal to achieve positive definiteness.
type Cholesky struct {
	L      *Matrix
	Jitter float64
}

// NewCholesky factorizes the symmetric matrix a (only the lower triangle
// is read). It does not modify a.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	return NewCholeskyJitter(a, 0)
}

// NewCholeskyJitter factorizes a, adding escalating diagonal jitter
// (starting at startJitter, or a scale-relative default when 0) whenever
// the factorization encounters a non-positive pivot. Gaussian-process
// covariance matrices are frequently near-singular when two inputs
// almost coincide, so adaptive jitter is the standard remedy.
func NewCholeskyJitter(a *Matrix, startJitter float64) (*Cholesky, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	// Mean absolute diagonal sets the jitter scale.
	var diagScale float64
	for i := 0; i < n; i++ {
		diagScale += math.Abs(a.At(i, i))
	}
	if n > 0 {
		diagScale /= float64(n)
	}
	if diagScale == 0 {
		diagScale = 1
	}
	jitter := startJitter
	for attempt := 0; attempt < 12; attempt++ {
		l, ok := tryCholesky(a, jitter)
		if ok {
			return &Cholesky{L: l, Jitter: jitter}, nil
		}
		if jitter == 0 {
			jitter = diagScale * 1e-10
		} else {
			jitter *= 10
		}
	}
	return nil, ErrNotPositiveDefinite
}

func tryCholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + jitter
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		d = math.Sqrt(d)
		lrowj[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s * inv
		}
	}
	return l, true
}

// SolveVec solves A·x = b given A = L·Lᵀ.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	x := make([]float64, len(b))
	tmp := make([]float64, len(b))
	c.SolveVecInto(b, x, tmp)
	return x
}

// SolveVecInto solves A·x = b into dst using tmp as scratch; all three
// slices must have length n and dst/tmp must not alias b. Hot loops
// (GP prediction, inverse columns) use it to avoid per-solve
// allocations.
func (c *Cholesky) SolveVecInto(b, dst, tmp []float64) {
	forwardSubstInto(c.L, b, tmp)
	backwardSubstTInto(c.L, tmp, dst)
}

// Solve solves A·X = B for every column of B.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	return c.SolveWorkers(b, 1)
}

// SolveWorkers solves A·X = B with columns distributed over workers
// (<= 0 means the package default). Columns are independent, so the
// result is bit-identical for every worker count.
func (c *Cholesky) SolveWorkers(b *Matrix, workers int) *Matrix {
	n := c.L.rows
	if b.rows != n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	x := NewMatrix(n, b.cols)
	type solveScratch struct{ col, sol, tmp []float64 }
	parallel.ForEachWorker(b.cols, workers, func() *solveScratch {
		return &solveScratch{col: make([]float64, n), sol: make([]float64, n), tmp: make([]float64, n)}
	}, func(sc *solveScratch, j int) {
		for i := 0; i < n; i++ {
			sc.col[i] = b.At(i, j)
		}
		c.SolveVecInto(sc.col, sc.sol, sc.tmp)
		for i := 0; i < n; i++ {
			x.Set(i, j, sc.sol[i])
		}
	})
	return x
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	n := c.L.rows
	for i := 0; i < n; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// Clone returns an independent deep copy of the factor. AppendRow and
// Downdate replace or mutate L in place, so a model that must absorb
// speculative updates without disturbing the original (the constant-liar
// batch path) clones the factor first.
func (c *Cholesky) Clone() *Cholesky {
	return &Cholesky{L: c.L.Clone(), Jitter: c.Jitter}
}

// Inverse returns A⁻¹.
func (c *Cholesky) Inverse() *Matrix {
	return c.InverseWorkers(1)
}

// InverseWorkers returns A⁻¹ with the independent unit-vector solves
// distributed over workers (<= 0 means the package default) — the
// per-iteration hot spot of the GP and LCM likelihood gradients.
func (c *Cholesky) InverseWorkers(workers int) *Matrix {
	n := c.L.rows
	inv := NewMatrix(n, n)
	type invScratch struct{ e, sol, tmp []float64 }
	parallel.ForEachWorker(n, workers, func() *invScratch {
		return &invScratch{e: make([]float64, n), sol: make([]float64, n), tmp: make([]float64, n)}
	}, func(sc *invScratch, j int) {
		for i := range sc.e {
			sc.e[i] = 0
		}
		sc.e[j] = 1
		c.SolveVecInto(sc.e, sc.sol, sc.tmp)
		for i := 0; i < n; i++ {
			inv.Set(i, j, sc.sol[i])
		}
	})
	return inv
}

// ForwardSubst solves L·y = b for lower-triangular L.
func ForwardSubst(l *Matrix, b []float64) []float64 {
	y := make([]float64, len(b))
	forwardSubstInto(l, b, y)
	return y
}

func forwardSubstInto(l *Matrix, b, y []float64) {
	n := l.rows
	if len(b) != n || len(y) != n {
		panic("linalg: ForwardSubst dimension mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
}

// BackwardSubstT solves Lᵀ·x = y for lower-triangular L.
func BackwardSubstT(l *Matrix, y []float64) []float64 {
	x := make([]float64, len(y))
	backwardSubstTInto(l, y, x)
	return x
}

func backwardSubstTInto(l *Matrix, y, x []float64) {
	n := l.rows
	if len(y) != n || len(x) != n {
		panic("linalg: BackwardSubstT dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// SolveLowerMatrix solves L·Y = B columnwise for lower-triangular L,
// returning Y. B is not modified.
func SolveLowerMatrix(l, b *Matrix) *Matrix {
	n := l.rows
	if b.rows != n {
		panic("linalg: SolveLowerMatrix dimension mismatch")
	}
	y := NewMatrix(n, b.cols)
	for i := 0; i < n; i++ {
		li := l.Row(i)
		yi := y.Row(i)
		bi := b.Row(i)
		copy(yi, bi)
		for k := 0; k < i; k++ {
			lik := li[k]
			if lik == 0 {
				continue
			}
			yk := y.Row(k)
			for j := range yi {
				yi[j] -= lik * yk[j]
			}
		}
		inv := 1 / li[i]
		for j := range yi {
			yi[j] *= inv
		}
	}
	return y
}
