package linalg

import (
	"fmt"
	"math"
)

// This file implements the O(n²) incremental maintenance of a Cholesky
// factor: rank-1 up/downdates and the bordered extension by one row.
// Together they let the GP surrogate absorb a new observation without
// the full O(n³) refactorization — the core of the suggestion-serving
// hot path, where one factor is kept live across thousands of requests
// and refreshed as crowd samples stream in.

// Update applies the rank-1 update A → A + v·vᵀ to the factor in place
// in O(n²) flops using a sweep of Givens rotations. v is not modified.
// The factor's jitter invariant L·Lᵀ = A + Jitter·I is preserved (the
// update shifts A, not the jitter).
func (c *Cholesky) Update(v []float64) {
	n := c.L.rows
	if len(v) != n {
		panic(fmt.Sprintf("linalg: Cholesky.Update length %d, want %d", len(v), n))
	}
	w := make([]float64, n)
	copy(w, v)
	for k := 0; k < n; k++ {
		rowk := c.L.Row(k)
		lkk := rowk[k]
		r := math.Hypot(lkk, w[k])
		cth := r / lkk
		sth := w[k] / lkk
		rowk[k] = r
		for i := k + 1; i < n; i++ {
			rowi := c.L.Row(i)
			rowi[k] = (rowi[k] + sth*w[i]) / cth
			w[i] = cth*w[i] - sth*rowi[k]
		}
	}
}

// Downdate applies the rank-1 downdate A → A − v·vᵀ in O(n²) flops.
// It fails with ErrNotPositiveDefinite when the downdated matrix is not
// positive definite; the factor is left unchanged in that case (the
// sweep runs on a copy that is swapped in only on success). v is not
// modified.
func (c *Cholesky) Downdate(v []float64) error {
	n := c.L.rows
	if len(v) != n {
		panic(fmt.Sprintf("linalg: Cholesky.Downdate length %d, want %d", len(v), n))
	}
	l := c.L.Clone()
	w := make([]float64, n)
	copy(w, v)
	for k := 0; k < n; k++ {
		rowk := l.Row(k)
		lkk := rowk[k]
		d := lkk*lkk - w[k]*w[k]
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		r := math.Sqrt(d)
		cth := r / lkk
		sth := w[k] / lkk
		rowk[k] = r
		for i := k + 1; i < n; i++ {
			rowi := l.Row(i)
			rowi[k] = (rowi[k] - sth*w[i]) / cth
			w[i] = cth*w[i] - sth*rowi[k]
		}
	}
	c.L = l
	return nil
}

// AppendRow extends the factor of the n×n matrix A to the factor of the
// bordered (n+1)×(n+1) matrix [[A, k], [kᵀ, d]] in O(n²): one
// triangular solve for the new off-diagonal row plus a Schur-complement
// square root for the new pivot. The factor's jitter is added to the
// new diagonal entry so the L·Lᵀ = A + Jitter·I invariant extends to
// the bordered matrix. When the bordered matrix is not positive
// definite under the current jitter, AppendRow returns
// ErrNotPositiveDefinite and leaves the factor unchanged — callers
// (gp.Observe) fall back to a full refactorization.
func (c *Cholesky) AppendRow(k []float64, d float64) error {
	n := c.L.rows
	if len(k) != n {
		panic(fmt.Sprintf("linalg: Cholesky.AppendRow length %d, want %d", len(k), n))
	}
	l12 := make([]float64, n)
	forwardSubstInto(c.L, k, l12)
	pivot := d + c.Jitter - Dot(l12, l12)
	if pivot <= 0 || math.IsNaN(pivot) {
		return ErrNotPositiveDefinite
	}
	grown := NewMatrix(n+1, n+1)
	for i := 0; i < n; i++ {
		copy(grown.Row(i)[:n], c.L.Row(i))
	}
	last := grown.Row(n)
	copy(last[:n], l12)
	last[n] = math.Sqrt(pivot)
	c.L = grown
	return nil
}
