package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Preconditioner applies M⁻¹ to a vector.
type Preconditioner interface {
	Apply(r []float64, z []float64) // z = M⁻¹ r
	Name() string
}

// IdentityPrec is the no-op preconditioner.
type IdentityPrec struct{}

// Apply copies r into z.
func (IdentityPrec) Apply(r, z []float64) { copy(z, r) }

// Name implements Preconditioner.
func (IdentityPrec) Name() string { return "none" }

// JacobiPrec is diagonal scaling.
type JacobiPrec struct{ invDiag []float64 }

// NewJacobi builds a Jacobi preconditioner for a.
func NewJacobi(a *CSR) (*JacobiPrec, error) {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("sparse: zero diagonal at row %d", i)
		}
		inv[i] = 1 / v
	}
	return &JacobiPrec{invDiag: inv}, nil
}

// Apply implements Preconditioner.
func (p *JacobiPrec) Apply(r, z []float64) {
	for i := range r {
		z[i] = r[i] * p.invDiag[i]
	}
}

// Name implements Preconditioner.
func (p *JacobiPrec) Name() string { return "jacobi" }

// ILU0Prec is an incomplete LU factorization with zero fill, stored in
// the sparsity pattern of A.
type ILU0Prec struct {
	lu   *CSR
	diag []int // position of the diagonal entry in each row
}

// NewILU0 computes the ILU(0) factorization of a.
func NewILU0(a *CSR) (*ILU0Prec, error) {
	n := a.N
	lu := &CSR{
		N:      n,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Values: append([]float64(nil), a.Values...),
	}
	diag := make([]int, n)
	for i := 0; i < n; i++ {
		diag[i] = -1
		for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
			if lu.ColIdx[k] == i {
				diag[i] = k
			}
		}
		if diag[i] < 0 {
			return nil, fmt.Errorf("sparse: ILU0 needs a full diagonal (row %d)", i)
		}
	}
	// IKJ-variant incomplete factorization.
	colPos := make(map[int]int, 16)
	for i := 0; i < n; i++ {
		colPos = map[int]int{}
		for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
			colPos[lu.ColIdx[k]] = k
		}
		for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
			j := lu.ColIdx[k]
			if j >= i {
				break // lower part only (column indices are sorted)
			}
			pivot := lu.Values[diag[j]]
			if pivot == 0 {
				return nil, errors.New("sparse: ILU0 zero pivot")
			}
			lik := lu.Values[k] / pivot
			lu.Values[k] = lik
			for kk := diag[j] + 1; kk < lu.RowPtr[j+1]; kk++ {
				if pos, ok := colPos[lu.ColIdx[kk]]; ok {
					lu.Values[pos] -= lik * lu.Values[kk]
				}
			}
		}
		if lu.Values[diag[i]] == 0 {
			return nil, errors.New("sparse: ILU0 zero pivot")
		}
	}
	return &ILU0Prec{lu: lu, diag: diag}, nil
}

// Apply implements Preconditioner: forward then backward substitution.
func (p *ILU0Prec) Apply(r, z []float64) {
	n := p.lu.N
	// z = L⁻¹ r (unit diagonal L).
	for i := 0; i < n; i++ {
		s := r[i]
		for k := p.lu.RowPtr[i]; k < p.diag[i]; k++ {
			s -= p.lu.Values[k] * z[p.lu.ColIdx[k]]
		}
		z[i] = s
	}
	// z = U⁻¹ z.
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := p.diag[i] + 1; k < p.lu.RowPtr[i+1]; k++ {
			s -= p.lu.Values[k] * z[p.lu.ColIdx[k]]
		}
		z[i] = s / p.lu.Values[p.diag[i]]
	}
}

// Name implements Preconditioner.
func (p *ILU0Prec) Name() string { return "ilu0" }

// GMRESOptions configures the solver.
type GMRESOptions struct {
	Restart int     // Krylov dimension m (default 30)
	MaxIter int     // total iteration cap (default 1000)
	Tol     float64 // relative residual tolerance (default 1e-8)
	Prec    Preconditioner
}

// GMRESResult reports the outcome.
type GMRESResult struct {
	X          []float64
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// GMRES solves A·x = b with restarted, right-preconditioned GMRES(m).
func GMRES(a *CSR, b []float64, opts GMRESOptions) (*GMRESResult, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("sparse: rhs length %d for %d-dim system", len(b), n)
	}
	m := opts.Restart
	if m <= 0 {
		m = 30
	}
	if m > n {
		m = n
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	prec := opts.Prec
	if prec == nil {
		prec = IdentityPrec{}
	}

	x := make([]float64, n)
	bnorm := norm2(b)
	if bnorm == 0 {
		return &GMRESResult{X: x, Converged: true}, nil
	}

	V := make([][]float64, m+1)
	for i := range V {
		V[i] = make([]float64, n)
	}
	H := make([][]float64, m+1)
	for i := range H {
		H[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	z := make([]float64, n)
	w := make([]float64, n)

	iter := 0
	relres := 1.0
	for iter < maxIter {
		// Residual r = b − A·x.
		a.MulVec(x, w)
		for i := 0; i < n; i++ {
			V[0][i] = b[i] - w[i]
		}
		beta := norm2(V[0])
		relres = beta / bnorm
		if relres < tol {
			return &GMRESResult{X: x, Iterations: iter, Residual: relres, Converged: true}, nil
		}
		inv := 1 / beta
		for i := range V[0] {
			V[0][i] *= inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && iter < maxIter; k++ {
			iter++
			// w = A·M⁻¹·v_k
			prec.Apply(V[k], z)
			a.MulVec(z, w)
			// Modified Gram–Schmidt.
			for j := 0; j <= k; j++ {
				h := dot(w, V[j])
				H[j][k] = h
				for i := range w {
					w[i] -= h * V[j][i]
				}
			}
			hk := norm2(w)
			H[k+1][k] = hk
			if hk > 1e-14 {
				inv := 1 / hk
				for i := range w {
					V[k+1][i] = w[i] * inv
				}
			}
			// Apply previous Givens rotations to the new column.
			for j := 0; j < k; j++ {
				t := cs[j]*H[j][k] + sn[j]*H[j+1][k]
				H[j+1][k] = -sn[j]*H[j][k] + cs[j]*H[j+1][k]
				H[j][k] = t
			}
			// New rotation.
			r := math.Hypot(H[k][k], H[k+1][k])
			if r == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = H[k][k]/r, H[k+1][k]/r
			}
			H[k][k] = r
			H[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			relres = math.Abs(g[k+1]) / bnorm
			if relres < tol || hk <= 1e-14 {
				k++
				break
			}
		}
		// Solve the small triangular system H y = g.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= H[i][j] * y[j]
			}
			y[i] = s / H[i][i]
		}
		// x += M⁻¹ (V·y)
		for i := range w {
			w[i] = 0
		}
		for j := 0; j < k; j++ {
			yj := y[j]
			vj := V[j]
			for i := range w {
				w[i] += yj * vj[i]
			}
		}
		prec.Apply(w, z)
		for i := range x {
			x[i] += z[i]
		}
		if relres < tol {
			// Recompute the true residual to report honestly.
			true_ := ResidualNorm(a, x, b) / bnorm
			return &GMRESResult{X: x, Iterations: iter, Residual: true_, Converged: true_ < tol*10}, nil
		}
	}
	return &GMRESResult{X: x, Iterations: iter, Residual: relres, Converged: false}, nil
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
