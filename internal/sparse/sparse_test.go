package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func onesRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}

func TestPoisson3DStructure(t *testing.T) {
	a, err := Poisson3D(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 64 {
		t.Fatalf("N = %d", a.N)
	}
	// Interior rows have 7 entries; row sums of the Laplacian with
	// Dirichlet boundaries are non-negative.
	d := a.Diagonal()
	for i := 0; i < a.N; i++ {
		if d[i] != 6 {
			t.Fatalf("diagonal[%d] = %v", i, d[i])
		}
		var rowSum float64
		nnzRow := a.RowPtr[i+1] - a.RowPtr[i]
		if nnzRow < 4 || nnzRow > 7 {
			t.Fatalf("row %d has %d entries", i, nnzRow)
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			rowSum += a.Values[k]
		}
		if rowSum < 0 {
			t.Fatalf("row %d sum %v", i, rowSum)
		}
	}
	if _, err := Poisson3D(0, 1, 1); err == nil {
		t.Fatal("expected error for empty grid")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	a, _ := Poisson3D(3, 3, 3)
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := a.MulVec(x, nil)
	// Check a handful of rows by explicit summation.
	for _, i := range []int{0, 5, 13, 26} {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Values[k] * x[a.ColIdx[k]]
		}
		if math.Abs(s-y[i]) > 1e-14 {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestGMRESUnpreconditioned(t *testing.T) {
	a, _ := Poisson3D(6, 6, 6)
	b := onesRHS(a.N)
	res, err := GMRES(a, b, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res.Residual)
	}
	if rn := ResidualNorm(a, res.X, b) / norm2(b); rn > 1e-8 {
		t.Fatalf("true residual %v", rn)
	}
}

func TestGMRESWithJacobi(t *testing.T) {
	a, _ := Poisson3D(6, 6, 6)
	b := onesRHS(a.N)
	p, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GMRES(a, b, GMRESOptions{Tol: 1e-10, Prec: p})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Jacobi GMRES did not converge")
	}
}

func TestGMRESWithILU0ConvergesFaster(t *testing.T) {
	a, err := ConvectionDiffusion3D(8, 8, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b := onesRHS(a.N)
	plain, err := GMRES(a, b, GMRESOptions{Tol: 1e-9, Restart: 20})
	if err != nil {
		t.Fatal(err)
	}
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := GMRES(a, b, GMRESOptions{Tol: 1e-9, Restart: 20, Prec: ilu})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("ILU0 GMRES did not converge")
	}
	if pre.Iterations >= plain.Iterations {
		t.Fatalf("ILU0 (%d iters) should beat plain (%d iters)", pre.Iterations, plain.Iterations)
	}
	if rn := ResidualNorm(a, pre.X, b) / norm2(b); rn > 1e-7 {
		t.Fatalf("true residual %v", rn)
	}
}

func TestILU0ExactForTriangularPattern(t *testing.T) {
	// For a lower-triangular matrix, ILU(0) is the exact factorization,
	// so the preconditioned solve converges in one application.
	entries := []coord{
		{0, 0, 2},
		{1, 0, 1}, {1, 1, 3},
		{2, 1, 1}, {2, 2, 4},
	}
	a := fromCOO(3, entries)
	ilu, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 4, 5}
	z := make([]float64, 3)
	ilu.Apply(b, z)
	if rn := ResidualNorm(a, z, b); rn > 1e-12 {
		t.Fatalf("ILU0 not exact on triangular matrix: residual %v", rn)
	}
}

func TestGMRESRestartVariants(t *testing.T) {
	a, _ := Poisson3D(5, 5, 5)
	b := onesRHS(a.N)
	for _, m := range []int{5, 10, 50, 200} {
		res, err := GMRES(a, b, GMRESOptions{Restart: m, Tol: 1e-8, MaxIter: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("restart=%d did not converge", m)
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a, _ := Poisson3D(3, 3, 3)
	res, err := GMRES(a, make([]float64, a.N), GMRESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || norm2(res.X) != 0 {
		t.Fatal("zero RHS should give zero solution")
	}
}

func TestGMRESValidation(t *testing.T) {
	a, _ := Poisson3D(3, 3, 3)
	if _, err := GMRES(a, []float64{1}, GMRESOptions{}); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestJacobiRejectsZeroDiagonal(t *testing.T) {
	a := fromCOO(2, []coord{{0, 1, 1}, {1, 0, 1}})
	if _, err := NewJacobi(a); err == nil {
		t.Fatal("expected zero-diagonal error")
	}
	if _, err := NewILU0(a); err == nil {
		t.Fatal("ILU0 should reject missing diagonal")
	}
}

func TestConvectionDiffusionNonsymmetric(t *testing.T) {
	a, _ := ConvectionDiffusion3D(3, 3, 3, 0.8)
	// Find entries (i,j) and (j,i) that differ.
	asym := false
	get := func(i, j int) float64 {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == j {
				return a.Values[k]
			}
		}
		return 0
	}
	for i := 0; i < a.N && !asym; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if get(i, j) != get(j, i) {
				asym = true
				break
			}
		}
	}
	if !asym {
		t.Fatal("convection term should break symmetry")
	}
}
