// Package sparse provides genuinely executing sparse linear algebra —
// CSR matrices, SpMV, restarted GMRES with Givens rotations, and Jacobi
// / ILU(0) preconditioners. Unlike the analytic application models in
// internal/apps, these kernels really run, so the sparsesolver example
// can tune real measured wall-clock time end-to-end.
package sparse

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int
	ColIdx []int
	Values []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Values) }

// MulVec computes y = A·x into the provided slice (allocated when nil).
func (a *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != a.N {
		panic("sparse: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, a.N)
	}
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Values[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

// Diagonal extracts the main diagonal.
func (a *CSR) Diagonal() []float64 {
	d := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				d[i] = a.Values[k]
				break
			}
		}
	}
	return d
}

// coord is a matrix entry in COO form, used during construction.
type coord struct {
	r, c int
	v    float64
}

// fromCOO assembles a CSR from (already row-sorted, deduplicated)
// coordinate entries.
func fromCOO(n int, entries []coord) *CSR {
	a := &CSR{N: n, RowPtr: make([]int, n+1)}
	a.ColIdx = make([]int, len(entries))
	a.Values = make([]float64, len(entries))
	for _, e := range entries {
		a.RowPtr[e.r+1]++
	}
	for i := 0; i < n; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	pos := make([]int, n)
	copy(pos, a.RowPtr[:n])
	for _, e := range entries {
		a.ColIdx[pos[e.r]] = e.c
		a.Values[pos[e.r]] = e.v
		pos[e.r]++
	}
	return a
}

// Poisson3D builds the standard 7-point Laplacian on an nx×ny×nz grid
// (Dirichlet boundaries) — the same operator class as the paper's Hypre
// case study.
func Poisson3D(nx, ny, nz int) (*CSR, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("sparse: invalid grid %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	entries := make([]coord, 0, 7*n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				r := idx(i, j, k)
				add := func(c int, v float64) { entries = append(entries, coord{r, c, v}) }
				if k > 0 {
					add(idx(i, j, k-1), -1)
				}
				if j > 0 {
					add(idx(i, j-1, k), -1)
				}
				if i > 0 {
					add(idx(i-1, j, k), -1)
				}
				add(r, 6)
				if i < nx-1 {
					add(idx(i+1, j, k), -1)
				}
				if j < ny-1 {
					add(idx(i, j+1, k), -1)
				}
				if k < nz-1 {
					add(idx(i, j, k+1), -1)
				}
			}
		}
	}
	return fromCOO(n, entries), nil
}

// ConvectionDiffusion3D builds a nonsymmetric 7-point operator with a
// convection term of strength beta — nonsymmetric systems are what
// GMRES (and SuperLU) exist for.
func ConvectionDiffusion3D(nx, ny, nz int, beta float64) (*CSR, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("sparse: invalid grid %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	entries := make([]coord, 0, 7*n)
	up := -1 - beta/2
	down := -1 + beta/2
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				r := idx(i, j, k)
				add := func(c int, v float64) { entries = append(entries, coord{r, c, v}) }
				if k > 0 {
					add(idx(i, j, k-1), -1)
				}
				if j > 0 {
					add(idx(i, j-1, k), -1)
				}
				if i > 0 {
					add(idx(i-1, j, k), up)
				}
				add(r, 6)
				if i < nx-1 {
					add(idx(i+1, j, k), down)
				}
				if j < ny-1 {
					add(idx(i, j+1, k), -1)
				}
				if k < nz-1 {
					add(idx(i, j, k+1), -1)
				}
			}
		}
	}
	return fromCOO(n, entries), nil
}

// ResidualNorm returns ‖b − A·x‖₂.
func ResidualNorm(a *CSR, x, b []float64) float64 {
	r := a.MulVec(x, nil)
	var s float64
	for i := range r {
		d := b[i] - r[i]
		s += d * d
	}
	return math.Sqrt(s)
}
