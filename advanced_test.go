package gptunecrowd

import (
	"errors"
	"math"
	"testing"
)

func TestSuggestReportLoop(t *testing.T) {
	// Drive the tuner manually: suggest → evaluate out-of-band → report.
	p := demoProblem()
	task := map[string]interface{}{"t": 1.0}
	h := &History{}
	for i := 0; i < 6; i++ {
		cfg, err := SuggestNext(p, h, "NoTLA", nil, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		y, evalErr := p.Evaluator.Evaluate(task, cfg)
		if err := ReportResult(p, h, cfg, y, evalErr); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 6 || h.NumOK() != 6 {
		t.Fatalf("history %d/%d", h.NumOK(), h.Len())
	}
	if _, ok := h.Best(); !ok {
		t.Fatal("no best")
	}
}

func TestReportResultFailure(t *testing.T) {
	p := demoProblem()
	h := &History{}
	if err := ReportResult(p, h, map[string]interface{}{"x": 0.5}, 0, errors.New("oom")); err != nil {
		t.Fatal(err)
	}
	if h.NumOK() != 0 || h.Len() != 1 {
		t.Fatal("failure not recorded")
	}
	if err := ReportResult(p, h, map[string]interface{}{"y": 1}, 0, nil); err == nil {
		t.Fatal("bad params should fail encoding")
	}
}

func TestSuggestNextWithSources(t *testing.T) {
	X, Y := collectDemo(t, 0.8, 30, 9)
	sources := []*SourceTask{NewSource("s", X, Y)}
	p := demoProblem()
	cfg, err := SuggestNext(p, nil, "Stacking", sources, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg["x"]; !ok {
		t.Fatalf("suggestion missing x: %v", cfg)
	}
	if _, err := SuggestNext(&Problem{}, nil, "NoTLA", nil, 1); err == nil {
		t.Fatal("invalid problem should fail")
	}
}

func TestTuneBatch(t *testing.T) {
	p := demoProblem()
	res, err := TuneBatch(p, map[string]interface{}{"t": 1.0}, BatchTuneOptions{
		TuneOptions: TuneOptions{Budget: 9, Seed: 2},
		BatchSize:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.History.Len() != 9 {
		t.Fatalf("budget %d", res.History.Len())
	}
	if res.Algorithm != "NoTLA" || res.BestParams == nil {
		t.Fatalf("result %+v", res)
	}
}

func TestAnalyzeVariabilityAPI(t *testing.T) {
	h := &History{}
	cfg := map[string]interface{}{"x": 0.5}
	h.Append(Sample{Params: cfg, Y: 1.0})
	h.Append(Sample{Params: cfg, Y: 2.0})
	rep := AnalyzeVariability(h, 0.05)
	if len(rep.Flagged) != 1 {
		t.Fatalf("flagged %d", len(rep.Flagged))
	}
}

func TestRobustEvaluatorAPI(t *testing.T) {
	calls := 0
	inner := EvaluatorFunc(func(_, _ map[string]interface{}) (float64, error) {
		calls++
		return 4, nil
	})
	r := NewRobustEvaluator(inner, 3)
	y, err := r.Evaluate(nil, nil)
	if err != nil || y != 4 {
		t.Fatalf("y=%v err=%v", y, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestSurrogateModelShareRoundTrip(t *testing.T) {
	c, d := crowdFixture(t)
	// Tune briefly to get a history, then store its surrogate.
	res, err := Tune(demoProblem(), map[string]interface{}{"t": 1.0}, TuneOptions{Budget: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	machine := MachineConfiguration{MachineName: "Cori", Partition: "haswell"}
	id, err := UploadSurrogateModel(c, d, map[string]interface{}{"t": 1.0}, res.History, machine, "public")
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("no id")
	}
	surr, err := DownloadSurrogateModel(c, d)
	if err != nil {
		t.Fatal(err)
	}
	mean, std := surr(map[string]interface{}{"x": 0.4})
	if math.IsNaN(mean) || std <= 0 {
		t.Fatalf("restored surrogate predicts %v ± %v", mean, std)
	}
	// The restored model should roughly agree with a fresh local fit
	// near observed data: evaluate at the best point and check the
	// prediction is in a plausible range of the history values.
	best, _ := res.History.Best()
	m2, _ := surr(best.Params)
	if m2 < best.Y-2 || m2 > best.Y+2 {
		t.Fatalf("restored model far off: %v vs best %v", m2, best.Y)
	}
}

func TestDownloadSurrogateModelMissing(t *testing.T) {
	c, d := crowdFixture(t)
	if _, err := DownloadSurrogateModel(c, d); err == nil {
		t.Fatal("expected no-models error")
	}
}

func TestUploadSurrogateModelNeedsSamples(t *testing.T) {
	c, d := crowdFixture(t)
	h := &History{}
	h.Append(Sample{ParamU: []float64{0.5}, Params: map[string]interface{}{"x": 0.5}, Y: 1})
	if _, err := UploadSurrogateModel(c, d, nil, h, MachineConfiguration{}, "public"); err == nil {
		t.Fatal("expected too-few-samples error")
	}
}
