package gptunecrowd

import (
	"context"
	"fmt"

	"gptunecrowd/internal/core"
	"gptunecrowd/internal/surrogate"
)

// sessionOptions lowers the public TuneOptions into the core session
// configuration, adapting the structured logger to the core layer's
// printf-style diagnostics hook.
func sessionOptions(opts TuneOptions) core.SessionOptions {
	so := core.SessionOptions{
		Budget:   opts.Budget,
		Seed:     opts.Seed,
		OnSample: opts.OnSample,
		Metrics:  opts.Metrics,
		Batch: core.BatchConfig{
			Strategy: opts.BatchStrategy,
			LPRadius: opts.BatchRadius,
		},
	}
	if opts.Logger != nil {
		lg := opts.Logger
		so.Logf = func(format string, args ...interface{}) {
			lg.Warn(fmt.Sprintf(format, args...))
		}
	}
	return so
}

// TuningSession is a suspendable tuning run. It exposes the same
// propose → evaluate → record loop as Tune, but decomposed into
// explicit steps whose complete state — history, iteration, RNG,
// outstanding proposal — serializes with Checkpoint and restores with
// ResumeTuningSession, continuing bit-identically to an uninterrupted
// run. That makes two things possible:
//
//   - stop/resume: a worker can be killed after any evaluation and a
//     different worker can pick the run up from the checkpoint;
//   - remote evaluation: call Propose, ship the configuration to
//     wherever the application runs, and Observe the measurement when
//     it lands (the Problem's Evaluator may be nil in this mode).
type TuningSession struct {
	inner     *core.Session
	algorithm string
}

// NewTuningSession starts a checkpointable tuning run. Algorithm
// resolution matches Tune: empty means NoTLA without sources and
// Ensemble(proposed) with them.
func NewTuningSession(p *Problem, task map[string]interface{}, opts TuneOptions) (*TuningSession, error) {
	alg, prop, err := resolveProposer(opts)
	if err != nil {
		return nil, err
	}
	s, err := core.NewSession(p, task, prop, sessionOptions(opts))
	if err != nil {
		return nil, err
	}
	return &TuningSession{inner: s, algorithm: alg}, nil
}

// ResumeTuningSession restores a session from a checkpoint taken with
// Checkpoint. The problem and options must describe the same run (the
// checkpoint records the problem and algorithm names and rejects
// mismatches); a larger opts.Budget extends the run.
func ResumeTuningSession(p *Problem, task map[string]interface{}, opts TuneOptions, checkpoint []byte) (*TuningSession, error) {
	alg, prop, err := resolveProposer(opts)
	if err != nil {
		return nil, err
	}
	s, err := core.ResumeSession(p, task, prop, sessionOptions(opts), checkpoint)
	if err != nil {
		return nil, err
	}
	return &TuningSession{inner: s, algorithm: alg}, nil
}

func resolveProposer(opts TuneOptions) (string, Proposer, error) {
	if opts.Surrogate != "" {
		if opts.Algorithm != "" {
			return "", nil, fmt.Errorf("gptunecrowd: Algorithm %q and Surrogate %q are mutually exclusive", opts.Algorithm, opts.Surrogate)
		}
		if !surrogate.ValidKind(opts.Surrogate) {
			return "", nil, fmt.Errorf("gptunecrowd: unknown surrogate %q (want one of %v)", opts.Surrogate, surrogate.Kinds())
		}
		prop, err := surrogate.NewProposer(opts.Surrogate, surrogate.PoolConfig{
			Config: surrogate.Config{
				Sources:          opts.Sources,
				MaxSourceSamples: opts.MaxSourceSamples,
			},
			Metrics: opts.Metrics,
		})
		if err != nil {
			return "", nil, err
		}
		return prop.Name(), prop, nil
	}
	alg := opts.Algorithm
	if alg == "" {
		if len(opts.Sources) > 0 {
			alg = "Ensemble(proposed)"
		} else {
			alg = "NoTLA"
		}
	}
	prop, err := NewProposer(alg, opts.Sources, opts.MaxSourceSamples)
	return alg, prop, err
}

// Propose returns the next configuration to evaluate. It is idempotent
// while a proposal is outstanding: calling it again (e.g. after a
// resume) returns the same configuration without consuming randomness.
// Thin wrapper over ProposeContext with context.Background().
func (s *TuningSession) Propose() (map[string]interface{}, error) { return s.inner.Propose() }

// ProposeContext is Propose with cooperative cancellation: the context
// threads into surrogate fitting and acquisition search, and a cancel
// surfaces as the wrapped context error without consuming budget or
// randomness — the session stays checkpointable and resumable.
func (s *TuningSession) ProposeContext(ctx context.Context) (map[string]interface{}, error) {
	return s.inner.ProposeContext(ctx)
}

// Observe records the measurement for the outstanding proposal. A
// non-nil evalErr records a failed evaluation, which consumes budget
// but is invisible to surrogate fits.
func (s *TuningSession) Observe(y float64, evalErr error) error { return s.inner.Observe(y, evalErr) }

// Batch observation errors, re-exported for drivers that feed a session
// from a crowd of workers. Match with errors.Is: the first two are
// harmless races (a retried task reporting a result the session already
// has), the third is a caller bug.
var (
	// ErrStaleObservation marks a result for a proposal already
	// committed to the history; the session is unchanged.
	ErrStaleObservation = core.ErrStaleObservation
	// ErrDuplicateObservation marks a second result for a still-pending
	// proposal; the first result stands.
	ErrDuplicateObservation = core.ErrDuplicateObservation
	// ErrUnknownProposal marks an id the session never issued.
	ErrUnknownProposal = core.ErrUnknownProposal
)

// Proposal is one outstanding batch proposal: the configuration to
// evaluate plus the id its measurement must be reported under with
// ObserveContext.
type Proposal struct {
	// ID is the session-unique, monotonically increasing proposal id.
	ID uint64
	// Params is the decoded parameter assignment to evaluate.
	Params map[string]interface{}
	// ParamU is the canonical (normalized) point.
	ParamU []float64
}

func publicProposals(in []core.PendingProposal) []Proposal {
	out := make([]Proposal, len(in))
	for i, p := range in {
		out[i] = Proposal{ID: p.ID, Params: p.Params, ParamU: p.ParamU}
	}
	return out
}

// ProposeBatch is ProposeBatchContext with a background context.
func (s *TuningSession) ProposeBatch(k int) ([]Proposal, error) {
	return s.ProposeBatchContext(context.Background(), k)
}

// ProposeBatchContext issues up to k new proposals on top of whatever
// is already in flight, so several workers can evaluate points of the
// same session concurrently. k is clamped to the remaining budget minus
// the in-flight count. Results are reported with ObserveContext in any
// order; the session commits them in proposal-id order, so history, RNG
// state and the next batch are bit-identical for every arrival order of
// the same result set. Cancellation between points returns the short
// batch (already in the ledger) together with the context's error.
func (s *TuningSession) ProposeBatchContext(ctx context.Context, k int) ([]Proposal, error) {
	props, err := s.inner.ProposeBatchContext(ctx, k)
	return publicProposals(props), err
}

// ObserveContext records the measurement for proposal id, wherever it
// sits in the batch. A non-nil evalErr records a failed evaluation. Out
// of order is fine; late duplicates surface as ErrStaleObservation or
// ErrDuplicateObservation and leave the session untouched.
func (s *TuningSession) ObserveContext(_ context.Context, id uint64, y float64, evalErr error) error {
	return s.inner.ObserveProposal(id, y, evalErr)
}

// PendingProposals returns the proposals still awaiting a result, in id
// order. After ResumeTuningSession this is the work to hand back out.
func (s *TuningSession) PendingProposals() []Proposal {
	return publicProposals(s.inner.PendingProposals())
}

// InFlight returns the number of proposals issued but not yet committed
// to the history.
func (s *TuningSession) InFlight() int { return s.inner.InFlight() }

// Step proposes and evaluates one point with the problem's Evaluator.
// Thin wrapper over StepContext with context.Background().
func (s *TuningSession) Step() error { return s.inner.Step() }

// StepContext is Step with cooperative cancellation. A cancel mid-
// evaluation abandons the measurement but keeps the proposal pending,
// so a resumed (or simply retried) session re-evaluates the same point
// rather than skipping it.
func (s *TuningSession) StepContext(ctx context.Context) error { return s.inner.StepContext(ctx) }

// Run steps until the budget is consumed, then reports the result like
// Tune. A partially run or resumed session simply continues. Thin
// wrapper over RunContext with context.Background().
func (s *TuningSession) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation. On cancellation it
// returns the wrapped context error together with a partial Result
// whose Checkpoint field resumes the run via ResumeTuningSession.
func (s *TuningSession) RunContext(ctx context.Context) (*Result, error) {
	h, err := s.inner.RunContext(ctx)
	if err != nil {
		if ctx.Err() == nil {
			return nil, err
		}
		res := &Result{History: h, Algorithm: s.algorithm}
		if best, ok := h.Best(); ok {
			res.BestParams = best.Params
			res.BestY = best.Y
		}
		if cp, cperr := s.Checkpoint(); cperr == nil {
			res.Checkpoint = cp
		}
		return res, err
	}
	res := &Result{History: h, Algorithm: s.algorithm}
	if best, ok := h.Best(); ok {
		res.BestParams = best.Params
		res.BestY = best.Y
		return res, nil
	}
	return res, fmt.Errorf("gptunecrowd: no successful evaluation within the budget of %d", s.inner.Budget())
}

// Checkpoint serializes the session's complete state. The session
// stays usable; checkpointing is read-only.
func (s *TuningSession) Checkpoint() ([]byte, error) { return s.inner.Checkpoint() }

// SessionStats are a session's robustness counters: surrogate-fit
// failures survived, iterations answered by space-filling sampling
// instead, and the most recent robust-ingestion gauges. They are not
// part of the checkpoint; a resumed session restarts them at zero.
type SessionStats struct {
	FitFailures  int64 // surrogate fits that failed and were degraded
	SpaceFill    int64 // iterations answered by space-filling sampling
	LastOutliers int64 // outliers excluded before the most recent fit
	LastImputed  int64 // failures penalty-imputed before the most recent fit
}

// Stats returns the robustness counters accumulated so far.
func (s *TuningSession) Stats() SessionStats {
	st := s.inner.Stats()
	return SessionStats{
		FitFailures:  st.FitFailures,
		SpaceFill:    st.SpaceFill,
		LastOutliers: st.LastOutliers,
		LastImputed:  st.LastImputed,
	}
}

// Done reports whether the budget is consumed.
func (s *TuningSession) Done() bool { return s.inner.Done() }

// Iter returns the number of recorded evaluations.
func (s *TuningSession) Iter() int { return s.inner.Iter() }

// Budget returns the evaluation budget.
func (s *TuningSession) Budget() int { return s.inner.Budget() }

// History returns the live evaluation history.
func (s *TuningSession) History() *History { return s.inner.History() }

// Algorithm returns the resolved proposer name.
func (s *TuningSession) Algorithm() string { return s.algorithm }
